package rcc

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// TestDefaultNoiseThresholdSweep pins the paper's derived saturation
// threshold across every legal vector size: NoiseMax defaults to ⌈3v/8⌉
// (floored at 1) and NoiseMin to 1, and the resolved pair always satisfies
// 1 ≤ NoiseMin ≤ NoiseMax < v.
func TestDefaultNoiseThresholdSweep(t *testing.T) {
	for _, wordBits := range []int{32, 64} {
		for v := 2; v <= wordBits; v++ {
			c, err := New(Config{MemoryBytes: 64, VectorBits: v, WordBits: wordBits})
			if err != nil {
				t.Fatalf("w=%d v=%d: %v", wordBits, v, err)
			}
			cfg := c.Config()
			want := (3*v + 7) / 8
			if want < 1 {
				want = 1
			}
			if cfg.NoiseMax != want {
				t.Errorf("w=%d v=%d: NoiseMax = %d, want ⌈3v/8⌉ = %d", wordBits, v, cfg.NoiseMax, want)
			}
			if cfg.NoiseMin != 1 {
				t.Errorf("w=%d v=%d: NoiseMin = %d, want 1", wordBits, v, cfg.NoiseMin)
			}
			if !(1 <= cfg.NoiseMin && cfg.NoiseMin <= cfg.NoiseMax && cfg.NoiseMax < v) {
				t.Errorf("w=%d v=%d: resolved noise range %d..%d violates invariant", wordBits, v, cfg.NoiseMin, cfg.NoiseMax)
			}
		}
	}
}

// TestConfigValidationBoundaries walks the exact edges of the config
// domain: one inside (accepted) and one outside (rejected) for each bound.
func TestConfigValidationBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want error
	}{
		{"v at word size ok", Config{MemoryBytes: 64, VectorBits: 64}, nil},
		{"v above word size", Config{MemoryBytes: 64, VectorBits: 65}, ErrVectorBits},
		{"v=33 in 32-bit span", Config{MemoryBytes: 64, VectorBits: 33, WordBits: 32}, ErrVectorBits},
		{"v=32 in 32-bit span ok", Config{MemoryBytes: 64, VectorBits: 32, WordBits: 32}, nil},
		{"v below 2", Config{MemoryBytes: 64, VectorBits: 1}, ErrVectorBits},
		{"word bits 16", Config{MemoryBytes: 64, VectorBits: 8, WordBits: 16}, ErrWordBits},
		{"noise max at v", Config{MemoryBytes: 64, VectorBits: 8, NoiseMax: 8}, ErrNoiseRange},
		{"noise max at v-1 ok", Config{MemoryBytes: 64, VectorBits: 8, NoiseMax: 7}, nil},
		{"noise min above max", Config{MemoryBytes: 64, VectorBits: 8, NoiseMin: 4, NoiseMax: 3}, ErrNoiseRange},
		{"noise min equals max ok", Config{MemoryBytes: 64, VectorBits: 8, NoiseMin: 3, NoiseMax: 3}, nil},
	} {
		_, err := New(tc.cfg)
		if tc.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeBruteForceCouponCollector checks the decode table at the two
// operating points the system actually reads — NoiseMin and NoiseMax —
// against a direct Monte-Carlo simulation of the fill process: throw balls
// uniformly at v bins until z remain empty.
func TestDecodeBruteForceCouponCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, v := range []int{4, 8, 16, 32} {
		c := MustNew(Config{MemoryBytes: 64, VectorBits: v})
		cfg := c.Config()
		for _, z := range []int{cfg.NoiseMin, cfg.NoiseMax} {
			const trials = 30_000
			var sum float64
			for i := 0; i < trials; i++ {
				var filled uint64
				zeros, throws := v, 0
				for zeros > z {
					throws++
					if b := uint64(1) << rng.Intn(v); filled&b == 0 {
						filled |= b
						zeros--
					}
				}
				sum += float64(throws)
			}
			mean := sum / trials
			got := c.Decode(z)
			if rel := math.Abs(mean-got) / got; rel > 0.02 {
				t.Errorf("v=%d z=%d: Decode = %.3f, simulated mean %.3f (%.1f%% off)", v, z, got, mean, rel*100)
			}
		}
		// Exact end points: z=v means zero throws; Decode clamps out-of-range
		// noise instead of indexing out of bounds.
		if c.Decode(v) != 0 {
			t.Errorf("v=%d: Decode(v) = %v, want 0", v, c.Decode(v))
		}
		if c.Decode(v+10) != c.Decode(v) || c.Decode(-3) != c.Decode(0) {
			t.Errorf("v=%d: Decode must clamp out-of-range noise", v)
		}
		if !(c.Decode(0) > c.Decode(cfg.NoiseMin) && c.Decode(cfg.NoiseMin) >= c.Decode(cfg.NoiseMax)) {
			t.Errorf("v=%d: decode table not monotone decreasing in noise", v)
		}
	}
}

// Test32BitConfinementSpanIndexing verifies the 32-bit confinement option:
// every resolved vector stays inside one 32-bit half of a pool word, the
// span index covers the full pool including the last span of the last
// word, and dense vectors (v equal to the span size) fill it exactly.
func Test32BitConfinementSpanIndexing(t *testing.T) {
	const memory = 64 // 8 words → 16 spans
	c := MustNew(Config{MemoryBytes: memory, VectorBits: 8, WordBits: 32, Seed: 3})

	spansSeen := make(map[uint64]bool)
	hashRng := rand.New(rand.NewSource(29))
	var loc Location
	for trial := 0; trial < 4096; trial++ {
		h := hashRng.Uint64()
		c.Locate(h, &loc)
		if loc.Word < 0 || loc.Word >= c.Words() {
			t.Fatalf("h=%x: word %d out of pool [0,%d)", h, loc.Word, c.Words())
		}
		if loc.N != 8 || bits.OnesCount64(loc.Mask) != 8 {
			t.Fatalf("h=%d: vector has %d positions, mask popcount %d", h, loc.N, bits.OnesCount64(loc.Mask))
		}
		// All positions must fall inside a single 32-bit span.
		lo := loc.Mask & 0xFFFFFFFF
		hi := loc.Mask >> 32
		if lo != 0 && hi != 0 {
			t.Fatalf("h=%d: mask %016x straddles the 32-bit span boundary", h, loc.Mask)
		}
		span := uint64(loc.Word) * 2
		if hi != 0 {
			span++
		}
		spansSeen[span] = true
		for i := 0; i < loc.N; i++ {
			p := uint(loc.Pos[i])
			if hi != 0 && (p < 32 || p >= 64) || hi == 0 && p >= 32 {
				t.Fatalf("h=%d: position %d outside its span", h, p)
			}
		}
	}
	// 4096 hashes over 16 spans: every span, including the last span of
	// the last word, must have been selected.
	for s := uint64(0); s < 16; s++ {
		if !spansSeen[s] {
			t.Errorf("span %d never selected (span indexing does not cover the pool)", s)
		}
	}

	// Dense case: v == span size forces the selectBit fallback and must
	// yield exactly the full span mask.
	dense := MustNew(Config{MemoryBytes: memory, VectorBits: 32, WordBits: 32, Seed: 3})
	for h := uint64(0); h < 256; h++ {
		dense.Locate(h*2654435761, &loc)
		lo := loc.Mask & 0xFFFFFFFF
		hi := loc.Mask >> 32
		if !(lo == 0xFFFFFFFF && hi == 0 || hi == 0xFFFFFFFF && lo == 0) {
			t.Fatalf("h=%d: dense 32-bit vector mask %016x is not one full span", h, loc.Mask)
		}
	}
}

// TestSelectBitExhaustive checks the k-th-set-bit helper against a naive
// scan over random words, plus the degenerate single-bit edges.
func TestSelectBitExhaustive(t *testing.T) {
	if got := selectBit(1, 0); got != 0 {
		t.Errorf("selectBit(1,0) = %d", got)
	}
	if got := selectBit(1<<63, 0); got != 63 {
		t.Errorf("selectBit(1<<63,0) = %d", got)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		x := rng.Uint64() | 1 // never empty
		n := bits.OnesCount64(x)
		want := make([]int, 0, n)
		for i := 0; i < 64; i++ {
			if x&(1<<uint(i)) != 0 {
				want = append(want, i)
			}
		}
		for k := 0; k < n; k++ {
			if got := selectBit(x, k); got != want[k] {
				t.Fatalf("selectBit(%016x, %d) = %d, want %d", x, k, got, want[k])
			}
		}
	}
}
