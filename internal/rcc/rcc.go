// Package rcc implements the Recyclable Counter with Confinement (RCC) of
// Nyang and Shin (IEEE/ACM ToN 2016), the sketch primitive InstaMeasure's
// FlowRegulator is built from.
//
// Each flow owns a small *virtual vector* of VectorBits bit positions, all
// confined within a single machine word of a shared bit pool so that one
// memory access serves the whole vector. Every packet sets one uniformly
// random bit of the flow's vector. When few zero bits remain — the count of
// remaining zeros is the *noise level* — the vector is *saturated*: the
// number of packets it absorbed is estimated online from the noise level,
// the vector is recycled (its bits cleared), and the estimate is handed to
// the caller. Mice flows rarely saturate and are therefore retained inside
// the sketch; only flows that keep growing emit estimates.
package rcc

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"unsafe"

	"instameasure/internal/flowhash"
	"instameasure/internal/prefetch"
)

// DecodeMethod selects how a noise level is converted to a packet-count
// estimate.
type DecodeMethod int

const (
	// DecodeCouponCollector estimates the expected number of uniform
	// throws needed to leave exactly z of v bins empty:
	// v·(H_v − H_z). This matches the stopping rule "saturate the first
	// time zeros reach the threshold" and is the default.
	DecodeCouponCollector DecodeMethod = iota + 1
	// DecodeLinearCounting uses the linear-counting MLE v·ln(v/z),
	// kept as an ablation of the decoding rule.
	DecodeLinearCounting
)

const wordBits = 64

// Config parameterizes a Counter.
type Config struct {
	// MemoryBytes is the size of the shared bit pool. It is rounded up to
	// a whole number of words; at least one word is allocated.
	MemoryBytes int
	// WordBits is the confinement word size — "32 or 64 bits depending on
	// processor" (Section III.D). 0 means 64. A 32-bit confinement halves
	// the span a virtual vector may occupy, raising collision noise
	// slightly but matching 32-bit switch CPUs.
	WordBits int
	// VectorBits is v, the virtual vector size per flow (2..WordBits).
	VectorBits int
	// NoiseMax is the saturation threshold: the vector saturates when at
	// most NoiseMax zero bits remain. 0 means derive the paper's default
	// (3 zero bits for an 8-bit vector, scaled as ⌈3v/8⌉, floor 1).
	NoiseMax int
	// NoiseMin is the lowest reportable noise level (observed noise below
	// it is clamped up). 0 means 1.
	NoiseMin int
	// Decode selects the estimation rule; 0 means DecodeCouponCollector.
	Decode DecodeMethod
	// Seed makes hashing and random bit selection deterministic.
	Seed uint64
}

// Validation errors.
var (
	ErrVectorBits = errors.New("rcc: VectorBits must be in [2, WordBits]")
	ErrWordBits   = errors.New("rcc: WordBits must be 32 or 64")
	ErrNoiseRange = errors.New("rcc: need 1 <= NoiseMin <= NoiseMax < VectorBits")
)

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.WordBits == 0 {
		cfg.WordBits = wordBits
	}
	if cfg.WordBits != 32 && cfg.WordBits != 64 {
		return cfg, fmt.Errorf("%w (got %d)", ErrWordBits, cfg.WordBits)
	}
	if cfg.VectorBits < 2 || cfg.VectorBits > cfg.WordBits {
		return cfg, fmt.Errorf("%w (got %d with %d-bit words)",
			ErrVectorBits, cfg.VectorBits, cfg.WordBits)
	}
	if cfg.MemoryBytes < 8 {
		cfg.MemoryBytes = 8
	}
	if cfg.NoiseMax == 0 {
		cfg.NoiseMax = (3*cfg.VectorBits + 7) / 8
		if cfg.NoiseMax < 1 {
			cfg.NoiseMax = 1
		}
	}
	if cfg.NoiseMin == 0 {
		cfg.NoiseMin = 1
	}
	if cfg.Decode == 0 {
		cfg.Decode = DecodeCouponCollector
	}
	if cfg.NoiseMin < 1 || cfg.NoiseMin > cfg.NoiseMax || cfg.NoiseMax >= cfg.VectorBits {
		return cfg, fmt.Errorf("%w (min=%d max=%d v=%d)",
			ErrNoiseRange, cfg.NoiseMin, cfg.NoiseMax, cfg.VectorBits)
	}
	return cfg, nil
}

// Location is a resolved virtual vector: the pool word holding it and the v
// bit positions inside that word. FlowRegulator resolves a Location once per
// packet and reuses it across both layers (the paper's hash-reuse design).
type Location struct {
	Word int
	Mask uint64
	Pos  [wordBits]uint8
	N    int
}

// Counter is one RCC instance over a private bit pool. It is not safe for
// concurrent use; the pipeline gives each worker its own Counter.
type Counter struct {
	cfg    Config
	words  []uint64
	nWords uint64
	// nSpans and spansPerWord implement the 32-bit confinement option:
	// virtual vectors live inside one span of spanBits bits, so a 32-bit
	// CPU still reads the whole vector with one access.
	nSpans       uint64
	spansPerWord uint64
	spanBits     uint
	rng          *flowhash.Rand
	decode       []float64

	encodes     uint64
	saturations uint64
}

// New builds a Counter from cfg.
func New(cfg Config) (*Counter, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := (full.MemoryBytes + 7) / 8
	spansPerWord := uint64(wordBits / full.WordBits)
	c := &Counter{
		cfg:          full,
		words:        make([]uint64, n),
		nWords:       uint64(n),
		nSpans:       uint64(n) * spansPerWord,
		spansPerWord: spansPerWord,
		spanBits:     uint(full.WordBits),
		rng:          flowhash.NewRand(full.Seed ^ 0xC0FFEE),
		decode:       decodeTable(full),
	}
	return c, nil
}

// MustNew is New for statically-known-good configs; it panics on error and
// is intended for package setup in tests and benchmarks.
func MustNew(cfg Config) *Counter {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the counter's resolved configuration.
func (c *Counter) Config() Config { return c.cfg }

// MemoryBytes returns the bit pool size.
func (c *Counter) MemoryBytes() int { return len(c.words) * 8 }

// Words returns the number of pool words; two Counters with equal Words can
// share Locations.
func (c *Counter) Words() int { return len(c.words) }

// Encodes returns the number of Encode calls processed.
func (c *Counter) Encodes() uint64 { return c.encodes }

// Saturations returns how many encodes triggered saturation. The ratio
// Saturations/Encodes is the paper's regulation rate (output ips / input pps).
func (c *Counter) Saturations() uint64 { return c.saturations }

// Locate resolves the virtual vector for flow hash h into loc. The vector
// is confined within one span (WordBits bits) of one pool word.
//
//im:hotpath
func (c *Counter) Locate(h uint64, loc *Location) {
	span := h % c.nSpans
	loc.Word = int(span / c.spansPerWord)
	base := uint(span%c.spansPerWord) * c.spanBits
	loc.N = c.cfg.VectorBits
	loc.Mask = 0

	// Derive v distinct bit positions within the span from an independent
	// stream of h. Rejection sampling against the accumulating mask is
	// cheap for v well below the span size and exact for dense vectors
	// thanks to the select fallback below.
	spanMask := (^uint64(0) >> (wordBits - c.spanBits)) << base
	s := flowhash.Mix64(h ^ (c.cfg.Seed + 0x9E3779B97F4A7C15))
	for i := 0; i < loc.N; i++ {
		var pos uint
		for tries := 0; ; tries++ {
			s = flowhash.Mix64(s)
			pos = base + uint(s%uint64(c.spanBits))
			if loc.Mask&(1<<pos) == 0 {
				break
			}
			if tries == 8 {
				// Dense vector: pick the k-th free span position directly.
				free := spanMask &^ loc.Mask
				k := int(s % uint64(bits.OnesCount64(free)))
				pos = uint(selectBit(free, k))
				break
			}
		}
		loc.Pos[i] = uint8(pos)
		loc.Mask |= 1 << pos
	}
}

// Encode records one packet of the flow with hash h. It reports the noise
// level and whether this packet saturated (and recycled) the vector.
func (c *Counter) Encode(h uint64) (noise int, saturated bool) {
	var loc Location
	c.Locate(h, &loc)
	return c.EncodeLoc(&loc)
}

// PrefetchLoc hints the cache line holding loc's pool word. The batched
// regulator resolves a burst of Locations first, prefetches every word,
// then encodes — overlapping the pool's DRAM misses across the burst.
// Advisory only; see internal/prefetch.
//
//im:hotpath
func (c *Counter) PrefetchLoc(loc *Location) {
	prefetch.T0(unsafe.Pointer(&c.words[loc.Word]))
}

// EncodeLoc is Encode with a pre-resolved Location.
//
//im:hotpath
func (c *Counter) EncodeLoc(loc *Location) (noise int, saturated bool) {
	c.encodes++
	w := &c.words[loc.Word]
	*w |= 1 << loc.Pos[c.rng.Intn(loc.N)]

	zeros := loc.N - bits.OnesCount64(*w&loc.Mask)
	if zeros > c.cfg.NoiseMax {
		return zeros, false
	}
	if zeros < c.cfg.NoiseMin {
		zeros = c.cfg.NoiseMin
	}
	*w &^= loc.Mask // recycle the vector
	c.saturations++
	return zeros, true
}

// Decode converts a saturation noise level to the estimated number of
// packets absorbed during that fill cycle.
func (c *Counter) Decode(noise int) float64 {
	if noise < 0 {
		noise = 0
	}
	if noise >= len(c.decode) {
		noise = len(c.decode) - 1
	}
	return c.decode[noise]
}

// EstimateResidual linear-counts the current (unsaturated) state of flow
// h's vector: the packets absorbed since the last recycle. Used when a
// measurement window closes to account for retained packets.
func (c *Counter) EstimateResidual(h uint64) float64 {
	var loc Location
	c.Locate(h, &loc)
	return c.EstimateResidualLoc(&loc)
}

// EstimateResidualLoc is EstimateResidual with a pre-resolved Location.
func (c *Counter) EstimateResidualLoc(loc *Location) float64 {
	w := c.words[loc.Word]
	zeros := loc.N - bits.OnesCount64(w&loc.Mask)
	if zeros == loc.N {
		return 0
	}
	if zeros == 0 {
		zeros = 1 // saturated-but-unrecycled state; clamp like Encode does
	}
	v := float64(loc.N)
	return v * math.Log(v/float64(zeros))
}

// RetentionCapacity reports the largest per-cycle estimate the counter can
// emit — the maximum number of packets one virtual vector retains before the
// flow must pass through (Fig. 8a's y-axis).
func (c *Counter) RetentionCapacity() float64 {
	return c.Decode(c.cfg.NoiseMin)
}

// Reset clears the bit pool and statistics.
func (c *Counter) Reset() {
	for i := range c.words {
		c.words[i] = 0
	}
	c.encodes = 0
	c.saturations = 0
}

// FillRatio reports the fraction of pool bits currently set — a congestion
// indicator for sizing experiments.
func (c *Counter) FillRatio() float64 {
	var ones int
	for _, w := range c.words {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(len(c.words)*wordBits)
}

func decodeTable(cfg Config) []float64 {
	v := cfg.VectorBits
	t := make([]float64, v+1)
	switch cfg.Decode {
	case DecodeLinearCounting:
		fv := float64(v)
		for z := 1; z <= v; z++ {
			t[z] = fv * math.Log(fv/float64(z))
		}
		t[0] = fv*math.Log(fv) + fv // one past z=1, mirroring the CC tail
	default: // DecodeCouponCollector
		// t[z] = v·(H_v − H_z): expected throws to leave z of v bins empty.
		h := make([]float64, v+1)
		for k := 1; k <= v; k++ {
			h[k] = h[k-1] + 1/float64(k)
		}
		for z := 0; z <= v; z++ {
			t[z] = float64(v) * (h[v] - h[z])
		}
	}
	return t
}

// selectBit returns the index of the k-th (0-based) set bit of x.
func selectBit(x uint64, k int) int {
	for i := 0; i < wordBits; i++ {
		if x&(1<<uint(i)) != 0 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return wordBits - 1
}
