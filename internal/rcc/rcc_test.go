package rcc

import (
	"errors"
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"instameasure/internal/flowhash"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr error
	}{
		{"vector too small", Config{VectorBits: 1}, ErrVectorBits},
		{"vector too big", Config{VectorBits: 65}, ErrVectorBits},
		{"noise min > max", Config{VectorBits: 8, NoiseMin: 4, NoiseMax: 2}, ErrNoiseRange},
		{"noise max >= v", Config{VectorBits: 8, NoiseMax: 8}, ErrNoiseRange},
		{"ok defaults", Config{VectorBits: 8}, nil},
		{"ok explicit", Config{VectorBits: 16, NoiseMin: 2, NoiseMax: 6, MemoryBytes: 1024}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("New err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultsDerivation(t *testing.T) {
	c := MustNew(Config{VectorBits: 8})
	cfg := c.Config()
	if cfg.NoiseMax != 3 {
		t.Errorf("default NoiseMax for v=8 is %d, want 3 (the paper's three noise classes)", cfg.NoiseMax)
	}
	if cfg.NoiseMin != 1 {
		t.Errorf("default NoiseMin = %d, want 1", cfg.NoiseMin)
	}
	if cfg.Decode != DecodeCouponCollector {
		t.Errorf("default Decode = %v, want coupon collector", cfg.Decode)
	}
	c16 := MustNew(Config{VectorBits: 16})
	if got := c16.Config().NoiseMax; got != 6 {
		t.Errorf("default NoiseMax for v=16 is %d, want 6", got)
	}
}

func TestMemoryRounding(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 100})
	if c.MemoryBytes()%8 != 0 || c.MemoryBytes() < 100 {
		t.Errorf("MemoryBytes = %d, want word-aligned >= 100", c.MemoryBytes())
	}
	tiny := MustNew(Config{VectorBits: 8, MemoryBytes: 1})
	if tiny.Words() < 1 {
		t.Error("must allocate at least one word")
	}
}

func TestLocateDistinctPositions(t *testing.T) {
	for _, v := range []int{2, 4, 8, 16, 32, 48, 64} {
		c := MustNew(Config{VectorBits: v, MemoryBytes: 4096, NoiseMax: 1})
		f := func(h uint64) bool {
			var loc Location
			c.Locate(h, &loc)
			if loc.N != v || bits.OnesCount64(loc.Mask) != v {
				return false
			}
			seen := make(map[uint8]bool, v)
			for i := 0; i < loc.N; i++ {
				if seen[loc.Pos[i]] || loc.Mask&(1<<loc.Pos[i]) == 0 {
					return false
				}
				seen[loc.Pos[i]] = true
			}
			return loc.Word >= 0 && loc.Word < c.Words()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("v=%d: %v", v, err)
		}
	}
}

func TestLocateDeterministic(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 1024})
	var a, b Location
	c.Locate(12345, &a)
	c.Locate(12345, &b)
	if a != b {
		t.Error("Locate must be deterministic per hash")
	}
}

func TestDecodeTableMonotonic(t *testing.T) {
	for _, method := range []DecodeMethod{DecodeCouponCollector, DecodeLinearCounting} {
		c := MustNew(Config{VectorBits: 8, Decode: method})
		prev := math.Inf(1)
		for z := 1; z <= 7; z++ {
			d := c.Decode(z)
			if d <= 0 {
				t.Errorf("method %v: Decode(%d) = %v, want positive", method, z, d)
			}
			if d >= prev {
				t.Errorf("method %v: Decode(%d)=%v not < Decode(%d)=%v", method, z, d, z-1, prev)
			}
			prev = d
		}
	}
}

func TestDecodeCouponCollectorValues(t *testing.T) {
	c := MustNew(Config{VectorBits: 8})
	// v(H_v − H_3) = 8(1/4+1/5+1/6+1/7+1/8) ≈ 7.076
	if got := c.Decode(3); math.Abs(got-7.0762) > 0.001 {
		t.Errorf("Decode(3) = %v, want ≈7.076", got)
	}
	// v(H_v − H_1) ≈ 13.743
	if got := c.Decode(1); math.Abs(got-13.7429) > 0.001 {
		t.Errorf("Decode(1) = %v, want ≈13.743", got)
	}
}

func TestDecodeClamps(t *testing.T) {
	c := MustNew(Config{VectorBits: 8})
	if c.Decode(-5) != c.Decode(0) {
		t.Error("negative noise must clamp to 0")
	}
	if c.Decode(100) != c.Decode(8) {
		t.Error("oversized noise must clamp to v")
	}
}

// TestSingleFlowCounting feeds one flow n packets through a dedicated
// sketch and checks the accumulated decoded estimate against n. This is
// the core correctness property of saturation-based decoding.
func TestSingleFlowCounting(t *testing.T) {
	for _, n := range []int{100, 1_000, 10_000} {
		c := MustNew(Config{VectorBits: 8, MemoryBytes: 4096, Seed: 3})
		h := flowhash.Sum64([]byte("the flow"), 9)
		var est float64
		for i := 0; i < n; i++ {
			if z, sat := c.Encode(h); sat {
				est += c.Decode(z)
			}
		}
		est += c.EstimateResidual(h)
		if err := math.Abs(est-float64(n)) / float64(n); err > 0.15 {
			t.Errorf("n=%d: estimate %.1f, rel err %.3f > 0.15", n, est, err)
		}
	}
}

// TestManyFlowAccuracy checks the estimator across many flows sharing a
// pool, where collision noise is present.
func TestManyFlowAccuracy(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 64 << 10, Seed: 5})
	const flows = 200
	const perFlow = 2_000
	est := make([]float64, flows)
	hashes := make([]uint64, flows)
	for i := range hashes {
		hashes[i] = flowhash.Mix64(uint64(i) + 1)
	}
	for p := 0; p < perFlow; p++ {
		for i, h := range hashes {
			if z, sat := c.Encode(h); sat {
				est[i] += c.Decode(z)
			}
		}
	}
	var sumErr float64
	for i := range est {
		e := est[i] + c.EstimateResidual(hashes[i])
		sumErr += math.Abs(e-perFlow) / perFlow
	}
	if mean := sumErr / flows; mean > 0.15 {
		t.Errorf("mean rel err %.3f > 0.15 across %d flows", mean, flows)
	}
}

func TestSaturationRecyclesVector(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 1024, Seed: 1})
	h := uint64(42)
	var loc Location
	c.Locate(h, &loc)
	for i := 0; i < 10_000; i++ {
		if _, sat := c.EncodeLoc(&loc); sat {
			// After recycling, the vector's bits must all be clear, so
			// the residual estimate is zero.
			if res := c.EstimateResidualLoc(&loc); res != 0 {
				t.Fatalf("residual after recycle = %v, want 0", res)
			}
			return
		}
	}
	t.Fatal("vector never saturated in 10k packets")
}

func TestSaturationNoiseWithinRange(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 256, Seed: 2})
	cfg := c.Config()
	// Hammer a small pool with many flows to provoke collision noise.
	for i := 0; i < 50_000; i++ {
		h := flowhash.Mix64(uint64(i % 37))
		if z, sat := c.Encode(h); sat {
			if z < cfg.NoiseMin || z > cfg.NoiseMax {
				t.Fatalf("saturation noise %d outside [%d,%d]", z, cfg.NoiseMin, cfg.NoiseMax)
			}
		}
	}
}

func TestRegulationRateBand(t *testing.T) {
	// A Zipf-ish stream through an 8-bit RCC regulates to roughly
	// 10–20% of packets (Fig. 1's observation).
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 128 << 10, Seed: 7})
	rng := flowhash.NewRand(11)
	const packets = 500_000
	for i := 0; i < packets; i++ {
		// 80% of packets from 20 elephants, the rest from a mice tail.
		var flow uint64
		if rng.Float64() < 0.8 {
			flow = uint64(rng.Intn(20))
		} else {
			flow = uint64(20 + rng.Intn(5000))
		}
		c.Encode(flowhash.Mix64(flow + 1))
	}
	rate := float64(c.Saturations()) / float64(c.Encodes())
	if rate < 0.05 || rate > 0.30 {
		t.Errorf("RCC regulation rate %.3f outside the plausible 5–30%% band", rate)
	}
}

func TestRetentionCapacityGrowsWithVector(t *testing.T) {
	prev := 0.0
	for _, v := range []int{8, 16, 32, 64} {
		c := MustNew(Config{VectorBits: v, MemoryBytes: 4096})
		rc := c.RetentionCapacity()
		if rc <= prev {
			t.Errorf("v=%d: retention %.1f not greater than previous %.1f", v, rc, prev)
		}
		prev = rc
	}
	// Additive growth: even a 64-bit RCC vector retains under ~300
	// packets (the paper: 77 with its decoding).
	if prev > 400 {
		t.Errorf("64-bit RCC retention %.1f implausibly high", prev)
	}
}

func TestEstimateResidualTracksFill(t *testing.T) {
	c := MustNew(Config{VectorBits: 16, MemoryBytes: 4096, Seed: 9})
	h := uint64(77)
	if r := c.EstimateResidual(h); r != 0 {
		t.Fatalf("fresh vector residual = %v, want 0", r)
	}
	c.Encode(h)
	c.Encode(h)
	if r := c.EstimateResidual(h); r <= 0 {
		t.Errorf("residual after 2 packets = %v, want positive", r)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 1024})
	for i := 0; i < 1000; i++ {
		c.Encode(uint64(i))
	}
	if c.Encodes() == 0 || c.FillRatio() == 0 {
		t.Fatal("setup failed: no activity recorded")
	}
	c.Reset()
	if c.Encodes() != 0 || c.Saturations() != 0 || c.FillRatio() != 0 {
		t.Error("Reset must clear pool and counters")
	}
}

func TestFillRatioBounds(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, MemoryBytes: 64})
	if c.FillRatio() != 0 {
		t.Error("fresh pool fill ratio must be 0")
	}
	for i := 0; i < 10_000; i++ {
		c.Encode(uint64(i))
	}
	if fr := c.FillRatio(); fr <= 0 || fr > 1 {
		t.Errorf("fill ratio %v out of (0,1]", fr)
	}
}

func TestSelectBit(t *testing.T) {
	if got := selectBit(0b1010, 0); got != 1 {
		t.Errorf("selectBit(0b1010, 0) = %d, want 1", got)
	}
	if got := selectBit(0b1010, 1); got != 3 {
		t.Errorf("selectBit(0b1010, 1) = %d, want 3", got)
	}
	if got := selectBit(1<<63, 0); got != 63 {
		t.Errorf("selectBit(1<<63, 0) = %d, want 63", got)
	}
}

func TestWordSharingNoiseOnlyInflates(t *testing.T) {
	// Property: collision noise can only cause over-estimation, never
	// under-estimation, for a flow measured alongside interferers.
	const n = 5_000
	solo := MustNew(Config{VectorBits: 8, MemoryBytes: 64, Seed: 4})
	h := uint64(123)
	var soloEst float64
	for i := 0; i < n; i++ {
		if z, sat := solo.Encode(h); sat {
			soloEst += solo.Decode(z)
		}
	}
	soloEst += solo.EstimateResidual(h)

	noisy := MustNew(Config{VectorBits: 8, MemoryBytes: 64, Seed: 4})
	var noisyEst float64
	for i := 0; i < n; i++ {
		if z, sat := noisy.Encode(h); sat {
			noisyEst += noisy.Decode(z)
		}
		// Interleave heavy interfering traffic into the tiny pool.
		for j := 0; j < 3; j++ {
			noisy.Encode(flowhash.Mix64(uint64(i*3 + j)))
		}
	}
	noisyEst += noisy.EstimateResidual(h)

	if noisyEst < soloEst*0.95 {
		t.Errorf("noise deflated estimate: solo %.0f vs noisy %.0f", soloEst, noisyEst)
	}
}

func TestWordBitsValidation(t *testing.T) {
	if _, err := New(Config{VectorBits: 8, WordBits: 16}); !errors.Is(err, ErrWordBits) {
		t.Errorf("WordBits=16 err = %v, want ErrWordBits", err)
	}
	if _, err := New(Config{VectorBits: 48, WordBits: 32}); !errors.Is(err, ErrVectorBits) {
		t.Errorf("v=48 in 32-bit words err = %v, want ErrVectorBits", err)
	}
	if _, err := New(Config{VectorBits: 8, WordBits: 32}); err != nil {
		t.Errorf("valid 32-bit config rejected: %v", err)
	}
}

func TestLocate32BitConfinement(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, WordBits: 32, MemoryBytes: 4096, NoiseMax: 3})
	sawLow, sawHigh := false, false
	for h := uint64(0); h < 500; h++ {
		var loc Location
		c.Locate(flowhash.Mix64(h+1), &loc)
		if bits.OnesCount64(loc.Mask) != 8 {
			t.Fatalf("mask popcount = %d", bits.OnesCount64(loc.Mask))
		}
		// All positions must sit inside one aligned 32-bit half.
		low := loc.Mask & 0xFFFFFFFF
		high := loc.Mask >> 32
		switch {
		case low != 0 && high != 0:
			t.Fatalf("vector spans both 32-bit halves: %#x", loc.Mask)
		case low != 0:
			sawLow = true
		default:
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Error("confinement never used one of the word halves")
	}
}

func TestCounting32BitConfinement(t *testing.T) {
	c := MustNew(Config{VectorBits: 8, WordBits: 32, MemoryBytes: 4096, Seed: 6})
	h := flowhash.Sum64([]byte("flow32"), 2)
	const n = 20_000
	var est float64
	for i := 0; i < n; i++ {
		if z, sat := c.Encode(h); sat {
			est += c.Decode(z)
		}
	}
	est += c.EstimateResidual(h)
	if relErr := math.Abs(est-n) / n; relErr > 0.15 {
		t.Errorf("32-bit confinement estimate %.0f, rel err %.3f", est, relErr)
	}
}
