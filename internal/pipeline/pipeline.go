// Package pipeline implements the paper's multi-core measurement system
// (Section IV.C): packets are distributed to per-worker engines by a
// flow-affine shard policy, and each worker core runs an independent
// FlowRegulator + WSAF engine over its exclusive memory block. Workers
// never share mutable state, so the design scales with cores exactly as
// the prototype did.
//
// Two ingest architectures share the System type:
//
//   - Shared-nothing (the default for splittable sources): every worker
//     pulls bursts from its own slice of the trace, hashes each packet
//     once, keeps the packets its shard owns, and hands the rest to their
//     owners over lock-free SPSC rings — no goroutine touches every
//     packet, so ingest capacity grows with workers.
//   - Manager funnel (the paper's Section IV.C layout, and the fallback
//     for plain sources, queue sampling, and legacy ShardFuncs): one
//     manager goroutine reads the source and dispatches batches to
//     per-worker FIFO queues. Dispatch order is the trace order, which
//     makes this mode deterministic — the differential oracle pins its
//     bit-exact pipeline≡scalar comparison to it.
//
// Packets travel in bursts either way (the DPDK idiom the prototype was
// built on), which keeps the per-packet synchronization cost negligible.
// In both modes the flow hash computed at ingest travels with the packet
// — across queues and rings alike — so no packet is ever hashed twice
// (the hashonce invariant is enforced across these seams by imvet).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"instameasure/internal/core"
	"instameasure/internal/flight"
	"instameasure/internal/flowhash"
	"instameasure/internal/packet"
	"instameasure/internal/telemetry"
	"instameasure/internal/trace"
	"instameasure/internal/wsaf"
)

// ShardFunc maps a packet to a worker index in [0, workers). Legacy
// policies of this shape may be stateful (RoundRobinShard), so setting
// one forces the single-manager funnel, where exactly one goroutine
// shards.
type ShardFunc func(p *packet.Packet, workers int) int

// HashShardFunc maps a packet to a worker index using the packet's
// precomputed flow hash. Policies of this shape must be pure functions of
// (h, p.Key, workers) — every ingesting worker of the shared-nothing mode
// shards independently and all must agree where a flow lives.
type HashShardFunc func(h uint64, p *packet.Packet, workers int) int

// HashShard is the load-balanced default policy: the flow hash's high 32
// bits, already computed for the sketches, are scaled into [0, workers)
// by fixed-point multiplication (no modulo bias, no re-hash). Flows land
// uniformly regardless of address structure, unlike popcount's binomial
// pileup on middling bit counts.
func HashShard(h uint64, _ *packet.Packet, workers int) int {
	return int((h >> 32) * uint64(workers) >> 32)
}

// PopcountShard is the paper's policy: the number of 1 bits in the source
// IP address selects the queue.
func PopcountShard(p *packet.Packet, workers int) int {
	return flowhash.PopCount32(p.Key.SrcIPv4()) % workers
}

// PopcountHashShard is PopcountShard in HashShardFunc shape: Fig-series
// experiments keep the paper's policy while running the shared-nothing
// ingest. The hash is ignored — popcount needs only the source address.
func PopcountHashShard(_ uint64, p *packet.Packet, workers int) int {
	return PopcountShard(p, workers)
}

// RoundRobinShard cycles through workers regardless of flow identity —
// the ablation baseline. It breaks flow affinity, so per-worker sketches
// each see a slice of every flow. The first packet goes to worker 0.
func RoundRobinShard() ShardFunc {
	var n int
	return func(_ *packet.Packet, workers int) int {
		w := n % workers
		n++
		return w
	}
}

// IngestMode selects the pipeline architecture.
type IngestMode int

// Ingest modes.
const (
	// IngestAuto picks shared-nothing when the source supports it (it
	// implements trace.SplittableSource, no legacy Shard is set, and
	// queue sampling is off) and the manager funnel otherwise.
	IngestAuto IngestMode = iota
	// IngestManager forces the single-manager funnel: deterministic
	// trace-order dispatch, required by the bit-exact differential
	// oracle and by Fig. 12's queue-occupancy sampling.
	IngestManager
	// IngestSharded forces shared-nothing per-worker ingest; New errors
	// at Run time if the source cannot be split or the config demands a
	// manager (legacy Shard, SampleEvery).
	IngestSharded
)

// Config parameterizes a System.
type Config struct {
	// Workers is the number of worker cores; 0 means 1.
	Workers int
	// QueueDepth is each worker's FIFO capacity in packets; 0 means 4096.
	// The depth bounds memory and provides the back-pressure point the
	// Fig. 12 queue-occupancy probe watches.
	QueueDepth int
	// BatchSize is the burst size packets travel in; 0 means 256.
	BatchSize int
	// Engine is the per-worker engine configuration. WSAF entries are
	// per worker; to match the paper's fixed 2^20 total, divide by
	// Workers before calling New.
	Engine core.Config
	// Shard, when set, selects a legacy (possibly stateful) dispatch
	// policy and forces the manager funnel. nil (the default) uses
	// HashPolicy instead.
	Shard ShardFunc
	// HashPolicy selects the flow-affine policy used when Shard is nil;
	// nil means HashShard (the load-balanced default). Paper-faithful
	// runs pass PopcountHashShard.
	HashPolicy HashShardFunc
	// Ingest selects the architecture; the zero value (IngestAuto) uses
	// shared-nothing ingest whenever the source supports it.
	Ingest IngestMode
	// SampleEvery controls queue-occupancy sampling: the manager records
	// every worker's queue length each SampleEvery packets. 0 disables
	// sampling.
	SampleEvery int
	// DropWhenFull makes ingest drop packets instead of blocking when the
	// destination worker's queue (manager mode) or exchange ring (sharded
	// mode) is full — the lossy head-of-line policy of a real NIC ring.
	// Dropped packets are counted against the destination worker in
	// Report.Dropped and the telemetry registry. Default false (lossless
	// back-pressure).
	DropWhenFull bool
	// Telemetry, if non-nil, receives per-worker metrics and is shared
	// with every worker engine; nil creates a registry sharded by
	// Workers, reachable via System.Telemetry().
	Telemetry *telemetry.Registry
	// Flight, if non-nil, is the flight recorder shared with every worker
	// engine; nil uses flight.Default().
	Flight *flight.Recorder
}

// QueueSample is one occupancy observation; depths are in packets
// (queued batches × batch size plus the manager-side partial batch).
type QueueSample struct {
	PacketIndex uint64
	TS          int64
	Depths      []int
}

// Report summarizes a completed run.
type Report struct {
	Packets      uint64
	Bytes        uint64
	WallTime     time.Duration
	PerWorker    []uint64
	BusyTime     []time.Duration
	QueueSamples []QueueSample
	// Queued counts packets enqueued to each worker by the manager;
	// Dropped counts packets discarded for that worker because its queue
	// was full (only non-zero with Config.DropWhenFull). For worker i,
	// Queued[i] = PerWorker[i] and Queued[i]+Dropped[i] is the load the
	// shard policy offered it.
	Queued  []uint64
	Dropped []uint64
}

// Imbalance reports the offered-load skew across workers: the maximum
// worker's share of (queued+dropped) packets over the mean share. 1.0 is
// perfectly balanced; RoundRobinShard sits at ~1.0 while PopcountShard
// inherits the binomial popcount distribution's skew.
func (r Report) Imbalance() float64 {
	if len(r.Queued) == 0 {
		return 0
	}
	var total, max uint64
	for i := range r.Queued {
		offered := r.Queued[i]
		if i < len(r.Dropped) {
			offered += r.Dropped[i]
		}
		total += offered
		if offered > max {
			max = offered
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.Queued))
	return float64(max) / mean
}

// MPPS returns the observed throughput in million packets per second.
func (r Report) MPPS() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Packets) / r.WallTime.Seconds() / 1e6
}

// AggregateMPPS models the pipeline's throughput with one core per
// worker: total packets over the bottleneck worker's busy time. On a host
// with fewer cores than workers the scheduler serializes the workers, so
// MPPS() (wall-clock) understates what the shared-nothing design delivers
// on real hardware; dividing by the busiest worker's CPU time instead
// recovers the as-if-parallel rate — the Fig. 9a methodology.
func (r Report) AggregateMPPS() float64 {
	var max time.Duration
	for _, bt := range r.BusyTime {
		if bt > max {
			max = bt
		}
	}
	if max <= 0 {
		return 0
	}
	return float64(r.Packets) / max.Seconds() / 1e6
}

// Utilization returns each worker's busy fraction (processing time over
// wall time) — the per-core CPU-usage proxy for the Fig. 12 experiment.
func (r Report) Utilization() []float64 {
	out := make([]float64, len(r.BusyTime))
	for i, b := range r.BusyTime {
		if r.WallTime > 0 {
			out[i] = float64(b) / float64(r.WallTime)
		}
	}
	return out
}

// workBatch is one queued burst: the packets plus, when the shard policy
// is hash-based, their precomputed flow hashes (index-aligned; nil under
// a legacy ShardFunc, where workers hash for themselves).
type workBatch struct {
	pkts   []packet.Packet
	hashes []uint64
}

// System is a multi-core measurement pipeline. Build one per run.
type System struct {
	cfg     Config
	engines []*core.Engine
	queues  []chan workBatch
	// recycle[w] is worker w's buffer free list: the worker pushes each
	// spent batch back (non-blocking) and the manager prefers a recycled
	// buffer over a fresh allocation, so the steady state moves a fixed
	// set of buffers around instead of allocating one per flush.
	recycle []chan workBatch
	shard   ShardFunc // nil in hash-policy mode
	policy  HashShardFunc
	// hashSeed is the flow-key hash seed shared by every worker engine:
	// a hash computed at ingest shards the packet and then probes
	// whichever worker's sketches and table it lands on.
	hashSeed uint64
	batch    int

	telemetry     *telemetry.Registry
	flight        *flight.Recorder
	workerPackets []telemetry.CounterShard
	workerDropped []telemetry.CounterShard
}

// New builds a System with per-worker engines whose seeds derive from the
// base engine seed so workers never collide in hash space.
func New(cfg Config) (*System, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.HashPolicy == nil {
		cfg.HashPolicy = HashShard
	}
	// One hash seed across all workers (see System.hashSeed). Seed zero
	// still needs a concrete shared value — worker engines derive
	// distinct sketch seeds from it, and HashSeed==0 would fall back to
	// each worker's own derived seed.
	hashSeed := cfg.Engine.HashSeed
	if hashSeed == 0 {
		hashSeed = cfg.Engine.Seed
	}
	if hashSeed == 0 {
		hashSeed = 0x1A57A4EA5EED // default shared hash seed
	}
	chanCap := cfg.QueueDepth / cfg.BatchSize
	if chanCap < 1 {
		chanCap = 1
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry("instameasure", cfg.Workers)
	}
	rec := cfg.Flight
	if rec == nil {
		rec = flight.Default()
	}
	s := &System{
		cfg:           cfg,
		flight:        rec,
		engines:       make([]*core.Engine, cfg.Workers),
		queues:        make([]chan workBatch, cfg.Workers),
		recycle:       make([]chan workBatch, cfg.Workers),
		shard:         cfg.Shard,
		policy:        cfg.HashPolicy,
		hashSeed:      hashSeed,
		batch:         cfg.BatchSize,
		telemetry:     reg,
		workerPackets: make([]telemetry.CounterShard, cfg.Workers),
		workerDropped: make([]telemetry.CounterShard, cfg.Workers),
	}
	packetCounters := make([]*telemetry.Counter, cfg.Workers)
	droppedCounters := make([]*telemetry.Counter, cfg.Workers)
	for i := range s.engines {
		engCfg := cfg.Engine
		engCfg.Seed = cfg.Engine.Seed + uint64(i)*0x9E3779B97F4A7C15
		engCfg.HashSeed = hashSeed
		engCfg.Telemetry = reg
		engCfg.Worker = i
		engCfg.Flight = rec
		eng, err := core.New(engCfg)
		if err != nil {
			return nil, fmt.Errorf("worker %d engine: %w", i, err)
		}
		s.engines[i] = eng
		s.queues[i] = make(chan workBatch, chanCap)
		// +2: every in-flight batch plus the one being processed and the
		// one being filled can be parked here, so neither side ever blocks
		// on the free list.
		s.recycle[i] = make(chan workBatch, chanCap+2)

		label := strconv.Itoa(i)
		packetCounters[i] = reg.Counter("worker_packets_total",
			"Packets processed, per worker.", "worker", label)
		droppedCounters[i] = reg.Counter("worker_dropped_total",
			"Packets dropped at a full worker queue (DropWhenFull policy), per worker.",
			"worker", label)
		s.workerPackets[i] = packetCounters[i].Shard(i)
		s.workerDropped[i] = droppedCounters[i].Shard(i)
		q := s.queues[i]
		batch := cfg.BatchSize
		reg.GaugeFunc("worker_queue_depth",
			"Queued packets awaiting a worker (batches in flight x batch size).",
			func() float64 { return float64(len(q) * batch) },
			"worker", label)
	}
	reg.GaugeFunc("shard_imbalance",
		"Max worker offered load over the mean (1.0 = perfectly balanced).",
		func() float64 {
			var total, max uint64
			for i := range packetCounters {
				offered := packetCounters[i].Value() + droppedCounters[i].Value()
				total += offered
				if offered > max {
					max = offered
				}
			}
			if total == 0 {
				return 0
			}
			return float64(max) / (float64(total) / float64(len(packetCounters)))
		})
	return s, nil
}

// Telemetry returns the registry shared by the manager and every worker
// engine.
func (s *System) Telemetry() *telemetry.Registry { return s.telemetry }

// Flight returns the recorder shared by every worker engine.
func (s *System) Flight() *flight.Recorder { return s.flight }

// Saturated is the pipeline's readiness probe: it errors when any worker
// queue is at or above 90% of its batch capacity — sustained saturation
// means the detection-delay bound is at risk (queueing delay is invisible
// to per-stage timers).
func (s *System) Saturated() error {
	for i, q := range s.queues {
		if c := cap(q); c > 0 && len(q)*10 >= c*9 {
			return fmt.Errorf("worker %d queue saturated: %d/%d batches in flight", i, len(q), c)
		}
	}
	return nil
}

// Workers returns the worker count.
func (s *System) Workers() int { return len(s.engines) }

// ShardOf returns the worker index the system's shard policy assigns to
// flow key k: the legacy ShardFunc when one is set, otherwise the hash
// policy over the shared hash seed. Callers use it to locate the engine
// owning a flow.
func (s *System) ShardOf(k packet.FlowKey) int {
	p := packet.Packet{Key: k}
	if s.shard != nil {
		return s.shard(&p, len(s.engines))
	}
	return s.policy(k.Hash64(s.hashSeed), &p, len(s.engines))
}

// Engines exposes the per-worker engines for post-run inspection. Do not
// call while Run is in flight.
func (s *System) Engines() []*core.Engine { return s.engines }

// Run drains src through the pipeline: the calling goroutine acts as the
// manager core, workers run as goroutines, and Run returns once every
// packet has been processed and all workers have exited.
func (s *System) Run(src trace.Source) (Report, error) {
	return s.RunContext(context.Background(), src)
}

// RunContext is Run with cancellation: when ctx is cancelled ingest stops
// reading the source, flushes pending batches, and waits for the workers
// to drain what was already queued. The report covers the packets
// dispatched before cancellation and the returned error wraps ctx.Err().
//
// The ingest architecture follows Config.Ingest: shared-nothing when the
// source is splittable (each worker reads its own stripe and exchanges
// cross-shard packets over SPSC rings), the manager funnel otherwise.
func (s *System) RunContext(ctx context.Context, src trace.Source) (Report, error) {
	sharded, err := s.useSharded(src)
	if err != nil {
		return Report{}, err
	}
	if sharded {
		return s.runSharded(ctx, src.(trace.SplittableSource))
	}
	return s.runManager(ctx, src)
}

// useSharded resolves the ingest mode for this source, erroring when a
// forced mode's requirements are unmet.
func (s *System) useSharded(src trace.Source) (bool, error) {
	_, splittable := src.(trace.SplittableSource)
	compatible := s.shard == nil && s.cfg.SampleEvery == 0
	switch s.cfg.Ingest {
	case IngestManager:
		return false, nil
	case IngestSharded:
		if !splittable {
			return false, errors.New("pipeline: IngestSharded needs a trace.SplittableSource")
		}
		if !compatible {
			return false, errors.New("pipeline: IngestSharded excludes legacy Shard and SampleEvery (manager-only features)")
		}
		return true, nil
	default:
		return splittable && compatible, nil
	}
}

// runManager is the funnel architecture: this goroutine reads the source
// in trace order and dispatches batches to per-worker FIFO queues. With a
// hash policy (Config.Shard nil) each packet is hashed here, once, and
// the hash travels with it.
func (s *System) runManager(ctx context.Context, src trace.Source) (Report, error) {
	var wg sync.WaitGroup
	nw := len(s.engines)
	perWorker := make([]uint64, nw)
	busy := make([]time.Duration, nw)
	for i := 0; i < nw; i++ {
		i := i
		eng := s.engines[i]
		q := s.queues[i]
		recycle := s.recycle[i]
		counter := s.workerPackets[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n uint64
			var b time.Duration
			for wb := range q {
				start := time.Now()
				if wb.hashes != nil {
					eng.ProcessBatchHashed(wb.pkts, wb.hashes)
				} else {
					eng.ProcessBatch(wb.pkts)
				}
				b += time.Since(start)
				n += uint64(len(wb.pkts))
				counter.Set(n)
				// Hand the spent buffer back to the manager; if the free
				// list is somehow full, let the GC have it.
				wb.pkts = wb.pkts[:0]
				if wb.hashes != nil {
					wb.hashes = wb.hashes[:0]
				}
				select {
				case recycle <- wb:
				default:
				}
			}
			// Publish exact totals now that this worker is done.
			eng.FlushTelemetry()
			perWorker[i] = n
			busy[i] = b
		}()
	}

	hashMode := s.shard == nil
	pending := make([]workBatch, nw)
	for i := range pending {
		pending[i].pkts = make([]packet.Packet, 0, s.batch)
		if hashMode {
			pending[i].hashes = make([]uint64, 0, s.batch)
		}
	}
	queued := make([]uint64, nw)
	dropped := make([]uint64, nw)
	// nextBuf prefers a buffer the worker has finished with over a fresh
	// allocation; with the free lists primed after the first QueueDepth
	// packets, the steady state allocates nothing per flush.
	nextBuf := func(w int) workBatch {
		select {
		case wb := <-s.recycle[w]:
			if hashMode && wb.hashes == nil {
				wb.hashes = make([]uint64, 0, s.batch)
			}
			return wb
		default:
			wb := workBatch{pkts: make([]packet.Packet, 0, s.batch)}
			if hashMode {
				wb.hashes = make([]uint64, 0, s.batch)
			}
			return wb
		}
	}
	flush := func(w int) {
		if len(pending[w].pkts) == 0 {
			return
		}
		if s.cfg.DropWhenFull {
			select {
			case s.queues[w] <- pending[w]:
				queued[w] += uint64(len(pending[w].pkts))
				pending[w] = nextBuf(w)
			default:
				dropped[w] += uint64(len(pending[w].pkts))
				s.workerDropped[w].Add(uint64(len(pending[w].pkts)))
				// The batch never left the manager; reuse it in place.
				pending[w].pkts = pending[w].pkts[:0]
				if pending[w].hashes != nil {
					pending[w].hashes = pending[w].hashes[:0]
				}
			}
		} else {
			s.queues[w] <- pending[w]
			queued[w] += uint64(len(pending[w].pkts))
			pending[w] = nextBuf(w)
		}
	}

	var report Report
	// depthArena backs QueueSample.Depths in blocks of depthArenaSamples
	// samples, replacing the per-sample allocation of the scalar manager.
	var depthArena []int
	const depthArenaSamples = 64
	sample := func(ts int64) {
		if len(depthArena) < nw {
			depthArena = make([]int, nw*depthArenaSamples)
		}
		depths := depthArena[:nw:nw]
		depthArena = depthArena[nw:]
		for j, q := range s.queues {
			depths[j] = len(q)*s.batch + len(pending[j].pkts)
		}
		report.QueueSamples = append(report.QueueSamples, QueueSample{
			PacketIndex: report.Packets,
			TS:          ts,
			Depths:      depths,
		})
	}
	dispatch := func(p *packet.Packet) {
		report.Packets++
		report.Bytes += uint64(p.Len)
		var w int
		if hashMode {
			h := p.Key.Hash64(s.hashSeed)
			w = s.policy(h, p, nw)
			pending[w].pkts = append(pending[w].pkts, *p)
			pending[w].hashes = append(pending[w].hashes, h)
		} else {
			w = s.shard(p, nw)
			pending[w].pkts = append(pending[w].pkts, *p)
		}
		if len(pending[w].pkts) >= s.batch {
			flush(w)
		}
		if s.cfg.SampleEvery > 0 && report.Packets%uint64(s.cfg.SampleEvery) == 0 {
			sample(p.TS)
		}
	}

	start := time.Now()
	var err error
	var cancelled bool
	if bs, ok := src.(trace.BatchSource); ok {
		// Bulk ingest: read a burst per interface call, then shard
		// packet-by-packet. The context check runs once per burst.
		readBuf := make([]packet.Packet, s.batch)
		for {
			select {
			case <-ctx.Done():
				cancelled = true
			default:
			}
			if cancelled {
				break
			}
			var n int
			n, err = bs.NextBatch(readBuf)
			for i := 0; i < n; i++ {
				dispatch(&readBuf[i])
			}
			if err != nil {
				break
			}
		}
	} else {
		// Scalar ingest for plain Sources. Check ctx every checkEvery
		// packets — cheap enough to leave on.
		const checkEvery = 1024
		for {
			if report.Packets%checkEvery == 0 {
				select {
				case <-ctx.Done():
					cancelled = true
				default:
				}
				if cancelled {
					break
				}
			}
			var p packet.Packet
			p, err = src.Next()
			if err != nil {
				break
			}
			dispatch(&p)
		}
	}
	for w := 0; w < nw; w++ {
		flush(w)
		close(s.queues[w])
	}
	wg.Wait()
	report.WallTime = time.Since(start)
	report.PerWorker = perWorker
	report.BusyTime = busy
	report.Queued = queued
	report.Dropped = dropped

	if cancelled {
		return report, fmt.Errorf("pipeline cancelled: %w", ctx.Err())
	}
	if !errors.Is(err, io.EOF) {
		return report, fmt.Errorf("pipeline source: %w", err)
	}
	return report, nil
}

// MergedSnapshot gathers live WSAF entries across every worker. Workers
// never share flows (sharding is by source IP), so concatenation is exact.
func (s *System) MergedSnapshot() []wsaf.Entry {
	var out []wsaf.Entry
	for _, eng := range s.engines {
		out = append(out, eng.Snapshot()...)
	}
	return out
}

// TotalRegulation reports packets seen and emissions across all workers —
// the system-wide regulation rate.
func (s *System) TotalRegulation() (packets, emissions uint64) {
	for _, eng := range s.engines {
		packets += eng.Regulator().Packets()
		emissions += eng.Regulator().Emissions()
	}
	return packets, emissions
}
