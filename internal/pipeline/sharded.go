package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"instameasure/internal/core"
	"instameasure/internal/packet"
	"instameasure/internal/telemetry"
	"instameasure/internal/trace"
)

// runSharded is the shared-nothing architecture: no manager. Each worker
// reads bursts from its own stripe of the source, hashes every packet
// once, keeps the packets its shard owns, and stages the rest into
// per-destination SPSC rings. Cross-shard packets carry their hash across
// the ring, so the receiving engine never re-hashes. Ingest capacity
// scales with workers because no goroutine touches every packet — the
// funnel's serial hash-and-dispatch loop, the old scaling ceiling, is
// gone.
//
// Per-engine packet order is not deterministic here: a worker interleaves
// its own stripe with ring arrivals as scheduling dictates. Flow totals
// and conservation are exact regardless (each packet is processed exactly
// once, on the worker owning its flow); only the sketches' packet-order-
// dependent randomness varies run to run, within the same accuracy
// envelope. Runs needing bit-reproducibility use IngestManager.
func (s *System) runSharded(ctx context.Context, src trace.SplittableSource) (Report, error) {
	nw := len(s.engines)
	parts := src.Split(nw)

	// rings[f][t] carries packets ingested by worker f but owned by
	// worker t. Depth is QueueDepth packets per lane, mirroring the
	// funnel's per-worker FIFO budget.
	rings := make([][]*ring, nw)
	for f := 0; f < nw; f++ {
		rings[f] = make([]*ring, nw)
		for t := 0; t < nw; t++ {
			if t != f {
				rings[f][t] = newRing(s.cfg.QueueDepth)
			}
		}
	}

	var cancelled atomic.Bool
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			cancelled.Store(true)
		case <-stop:
		}
	}()

	workers := make([]*shardWorker, nw)
	for i := 0; i < nw; i++ {
		w := &shardWorker{
			id:        i,
			sys:       s,
			eng:       s.engines[i],
			part:      parts[i],
			in:        make([]*ring, nw),
			out:       rings[i],
			outBuf:    make([][]hpkt, nw),
			popBuf:    make([]hpkt, s.batch),
			readBuf:   make([]packet.Packet, s.batch),
			drops:     make([]uint64, nw),
			counter:   s.workerPackets[i],
			dropCount: s.workerDropped[i],
			cancelled: &cancelled,
			yield:     nw > runtime.NumCPU(),
		}
		w.local.pkts = make([]packet.Packet, 0, s.batch)
		w.local.hashes = make([]uint64, 0, s.batch)
		for f := 0; f < nw; f++ {
			w.in[f] = rings[f][i]
			if f != i {
				w.outBuf[f] = make([]hpkt, 0, outStage)
			}
		}
		workers[i] = w
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run()
		}()
	}
	wg.Wait()

	report := Report{
		PerWorker: make([]uint64, nw),
		BusyTime:  make([]time.Duration, nw),
		Queued:    make([]uint64, nw),
		Dropped:   make([]uint64, nw),
	}
	var err error
	for i, w := range workers {
		// Packets/Bytes count everything read from the source: processed
		// plus dropped, matching the manager funnel's accounting.
		report.Packets += w.packets
		report.Bytes += w.bytes + w.dropBytes
		report.PerWorker[i] = w.packets
		report.BusyTime[i] = w.busy - w.blocked
		if report.BusyTime[i] < 0 {
			report.BusyTime[i] = 0
		}
		report.Queued[i] = w.packets
		for t, d := range w.drops {
			report.Dropped[t] += d
			report.Packets += d
		}
		if err == nil && w.err != nil {
			err = w.err
		}
	}
	report.WallTime = time.Since(start)

	if cancelled.Load() {
		return report, fmt.Errorf("pipeline cancelled: %w", ctx.Err())
	}
	if err != nil {
		return report, fmt.Errorf("pipeline source: %w", err)
	}
	return report, nil
}

// outStage is the per-destination staging buffer: cross-shard packets
// accumulate here so a ring push publishes a run of packets with one
// atomic store instead of one per packet. Flushed at every burst end, so
// staging never delays a packet by more than one read burst.
const outStage = 64

// shardWorker is one shared-nothing worker: reader, sharder, and engine
// owner in a single goroutine.
type shardWorker struct {
	id   int
	sys  *System
	eng  *core.Engine
	part trace.BatchSource

	in     []*ring  // in[f]: packets worker f ingested for us (nil for f==id)
	out    []*ring  // out[t]: our lane to worker t (nil for t==id)
	outBuf [][]hpkt // staging per destination

	local   workBatch // packets this shard owns, pending a ProcessBatchHashed
	popBuf  []hpkt
	readBuf []packet.Packet

	packets   uint64
	bytes     uint64
	busy      time.Duration
	blocked   time.Duration // time yielded away inside busy windows (full-ring waits)
	drops     []uint64      // drops[t]: packets owned by t discarded at a full ring
	dropBytes uint64
	err       error

	// yield makes the worker release the CPU at every loop top. With more
	// workers than cores the scheduler would otherwise preempt a worker
	// mid-burst and its busy-time window would absorb the other workers'
	// whole time slices, poisoning the per-core model AggregateMPPS is
	// built on; yielding at the window boundary keeps windows clean (a
	// freshly scheduled goroutine isn't preempted for ~10ms, far longer
	// than one burst).
	yield bool

	counter   telemetry.CounterShard
	dropCount telemetry.CounterShard
	cancelled *atomic.Bool
}

func (w *shardWorker) run() {
	srcDone := false
	for {
		if w.yield {
			runtime.Gosched()
		}
		t0 := time.Now()
		did := w.drainIn()

		if !srcDone {
			n, err := w.part.NextBatch(w.readBuf)
			if n > 0 {
				did = true
				w.ingest(w.readBuf[:n])
			}
			if err != nil || w.cancelled.Load() {
				if err != nil && !errors.Is(err, io.EOF) {
					w.err = err
				}
				srcDone = true
				// Push staged leftovers, then close our lanes: consumers
				// drain what is buffered and see drained() afterwards.
				for t := range w.outBuf {
					if w.out[t] != nil {
						w.flushOut(t)
						w.out[t].close()
					}
				}
			}
		}
		if did {
			w.busy += time.Since(t0)
		}

		if srcDone {
			alive := false
			for _, r := range w.in {
				if r != nil && !r.drained() {
					alive = true
					break
				}
			}
			if !alive {
				// Producers are done and every lane is empty: whatever is
				// in local is the final partial batch.
				if len(w.local.pkts) > 0 {
					t1 := time.Now()
					w.process()
					w.busy += time.Since(t1)
				}
				break
			}
		}
		if !did {
			// Nothing to do this pass — yield instead of burning the CPU
			// other workers need (essential on small hosts).
			runtime.Gosched()
		}
	}
	w.eng.FlushTelemetry()
}

// ingest hashes and shards one read burst. Own packets accumulate in
// local; foreign packets stage per destination and flush at burst end.
//
//im:hotpath
func (w *shardWorker) ingest(pkts []packet.Packet) {
	nw := len(w.sys.engines)
	seed := w.sys.hashSeed
	policy := w.sys.policy
	for i := range pkts {
		p := &pkts[i]
		h := p.Key.Hash64(seed)
		t := policy(h, p, nw)
		if t == w.id {
			w.local.pkts = append(w.local.pkts, *p)
			w.local.hashes = append(w.local.hashes, h)
			if len(w.local.pkts) >= w.sys.batch {
				w.process()
			}
		} else {
			w.outBuf[t] = append(w.outBuf[t], hpkt{p: *p, h: h})
			if len(w.outBuf[t]) >= outStage {
				w.flushOut(t)
			}
		}
	}
	for t := range w.outBuf {
		if w.out[t] != nil && len(w.outBuf[t]) > 0 {
			w.flushOut(t)
		}
	}
}

// flushOut publishes destination t's staged packets. When the ring is
// full: lossless mode keeps draining our own inbound lanes (so the
// blocked cycle always makes progress — the classic two-workers-pushing-
// at-each-other deadlock resolves because both drain while they wait);
// DropWhenFull discards the remainder, counted against the destination.
func (w *shardWorker) flushOut(t int) {
	b := w.outBuf[t]
	r := w.out[t]
	i := 0
	for i < len(b) {
		i += r.pushBatch(b[i:])
		if i >= len(b) {
			break
		}
		if w.sys.cfg.DropWhenFull {
			n := uint64(len(b) - i)
			w.drops[t] += n
			for j := i; j < len(b); j++ {
				w.dropBytes += uint64(b[j].p.Len)
			}
			// Published on the *producer's* shard (single-writer rule);
			// Report.Dropped still attributes to the destination.
			w.dropCount.Add(n)
			break
		}
		w.drainIn()
		// The wait for ring space runs inside the caller's busy window;
		// time handed to other goroutines here is their work, not ours.
		//im:allow hotalloc — blocked-time stamp on the ring-full wait, not per-packet
		g0 := time.Now()
		runtime.Gosched()
		//im:allow hotalloc — paired with the start stamp above
		w.blocked += time.Since(g0)
	}
	w.outBuf[t] = b[:0]
}

// drainIn pops every inbound lane into local, processing full batches as
// they form. Reports whether any packet arrived.
//
//im:hotpath
func (w *shardWorker) drainIn() bool {
	did := false
	for _, r := range w.in {
		if r == nil {
			continue
		}
		for {
			n := r.popBatch(w.popBuf)
			if n == 0 {
				break
			}
			did = true
			for i := 0; i < n; i++ {
				hp := &w.popBuf[i]
				w.local.pkts = append(w.local.pkts, hp.p)
				w.local.hashes = append(w.local.hashes, hp.h)
				if len(w.local.pkts) >= w.sys.batch {
					w.process()
				}
			}
			if n < len(w.popBuf) {
				break
			}
		}
	}
	return did
}

// process runs the engine over the accumulated local batch.
func (w *shardWorker) process() {
	pkts := w.local.pkts
	for i := range pkts {
		w.bytes += uint64(pkts[i].Len)
	}
	w.packets += uint64(len(pkts))
	w.eng.ProcessBatchHashed(pkts, w.local.hashes)
	w.counter.Set(w.packets)
	w.local.pkts = pkts[:0]
	w.local.hashes = w.local.hashes[:0]
}
