package pipeline

import (
	"math/bits"
	"sync/atomic"

	"instameasure/internal/packet"
)

// hpkt is the unit of cross-worker exchange in the shared-nothing
// pipeline: a packet plus its precomputed flow hash, so the receiving
// worker never re-hashes (the hashonce invariant crosses the ring).
type hpkt struct {
	p packet.Packet
	h uint64
}

// ring is a bounded single-producer/single-consumer queue of hpkt — the
// lock-free lane worker A uses to hand worker B the packets A ingested
// but B's shard owns. The Lamport layout: the producer owns tail, the
// consumer owns head, each side reads the other's index with one atomic
// load per burst and publishes its own with one atomic store, so a
// full-burst exchange costs two atomics instead of a channel's
// mutex+scheduler round trip. Index fields sit on their own cache lines;
// without the padding every push would false-share with every pop
// (imvet's atomicfield gate checks the cell sizing).
//
// Close-while-full semantics: close only publishes the closed flag — the
// consumer drains whatever is buffered first and drained() turns true
// only once the ring is both closed and empty, so no packet is lost at
// shutdown.
type ring struct {
	buf  []hpkt
	mask uint64
	_    [32]byte // pad the header (24-byte slice + 8-byte mask) to one cache line

	head atomic.Uint64 // consumer cursor: next slot to pop
	_    [56]byte

	tail atomic.Uint64 // producer cursor: next slot to fill
	_    [56]byte

	closed atomic.Uint32
	_      [60]byte
}

// newRing builds a ring holding at least capacity elements (rounded up to
// a power of two).
func newRing(capacity int) *ring {
	if capacity < 2 {
		capacity = 2
	}
	n := 1 << bits.Len(uint(capacity-1))
	return &ring{buf: make([]hpkt, n), mask: uint64(n - 1)}
}

// pushBatch appends up to len(src) elements and returns how many fit; it
// never blocks. One atomic load of the consumer cursor and one atomic
// publish of the producer cursor per call, regardless of burst size.
// Producer side only.
//
//im:hotpath
func (r *ring) pushBatch(src []hpkt) int {
	t := r.tail.Load() // own cursor: plain value, atomic for the gauge side
	free := uint64(len(r.buf)) - (t - r.head.Load())
	n := uint64(len(src))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = src[i]
	}
	r.tail.Store(t + n)
	return int(n)
}

// popBatch removes up to len(dst) elements and returns how many were
// copied; it never blocks. Consumer side only.
//
//im:hotpath
func (r *ring) popBatch(dst []hpkt) int {
	h := r.head.Load()
	avail := r.tail.Load() - h
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
	}
	r.head.Store(h + n)
	return int(n)
}

// close marks the producer done. Buffered elements stay poppable.
func (r *ring) close() { r.closed.Store(1) }

// drained reports closed-and-empty — the consumer's termination test.
// The closed flag is read before the cursors: racing the producer's final
// push-then-close can only err toward "not drained yet", never toward
// losing a packet.
//
//im:hotpath
func (r *ring) drained() bool {
	if r.closed.Load() == 0 {
		return false
	}
	return r.tail.Load() == r.head.Load()
}

// len reports the buffered element count (approximate under concurrency;
// used by occupancy telemetry only).
func (r *ring) len() int {
	return int(r.tail.Load() - r.head.Load())
}
