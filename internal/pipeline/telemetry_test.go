package pipeline

import (
	"strings"
	"testing"
)

func TestReportImbalance(t *testing.T) {
	cases := []struct {
		name    string
		queued  []uint64
		dropped []uint64
		want    float64
	}{
		{"empty", nil, nil, 0},
		{"all zero", []uint64{0, 0}, []uint64{0, 0}, 0},
		{"balanced", []uint64{100, 100, 100, 100}, nil, 1.0},
		{"one hot worker", []uint64{300, 100, 100, 100}, nil, 2.0},
		{"drops count as offered load", []uint64{100, 100}, []uint64{100, 0}, 4.0 / 3},
	}
	for _, c := range cases {
		rep := Report{Queued: c.queued, Dropped: c.dropped}
		if got := rep.Imbalance(); got != c.want {
			t.Errorf("%s: Imbalance() = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestImbalanceRoundRobinVsPopcount is the satellite ablation: round robin
// spreads offered load near-perfectly while popcount sharding inherits the
// binomial skew of bit counts in source addresses.
func TestImbalanceRoundRobinVsPopcount(t *testing.T) {
	tr := testTrace(t, 3000, 60_000)

	run := func(shard ShardFunc) Report {
		t.Helper()
		cfg := testConfig(4)
		cfg.Shard = shard
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rr := run(RoundRobinShard())
	pc := run(PopcountShard)

	if rr.Imbalance() > 1.01 {
		t.Errorf("round robin imbalance = %.4f, want ~1.0", rr.Imbalance())
	}
	if pc.Imbalance() <= rr.Imbalance() {
		t.Errorf("popcount imbalance %.4f not worse than round robin %.4f",
			pc.Imbalance(), rr.Imbalance())
	}
	if pc.Imbalance() < 1.05 {
		t.Errorf("popcount imbalance = %.4f, expected visible binomial skew", pc.Imbalance())
	}
}

func TestDropWhenFullAccounting(t *testing.T) {
	tr := testTrace(t, 2000, 200_000)
	cfg := testConfig(2)
	// Manager mode: its dispatch loop outruns the workers, so a 1-packet
	// queue overflows deterministically. (Sharded workers drain their own
	// rings between bursts, so whether an exchange ring ever fills is
	// scheduling luck — TestShardedDropAccounting covers that side's
	// conservation identity instead.)
	cfg.Ingest = IngestManager
	cfg.DropWhenFull = true
	cfg.BatchSize = 1
	cfg.QueueDepth = 1 // one batch in flight per worker
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}

	var queued, dropped, processed uint64
	for w := range rep.Queued {
		queued += rep.Queued[w]
		dropped += rep.Dropped[w]
		processed += rep.PerWorker[w]
		if rep.Queued[w] != rep.PerWorker[w] {
			t.Errorf("worker %d: queued %d != processed %d", w, rep.Queued[w], rep.PerWorker[w])
		}
	}
	if queued+dropped != rep.Packets {
		t.Errorf("queued %d + dropped %d != packets %d", queued, dropped, rep.Packets)
	}
	if dropped == 0 {
		t.Error("expected drops with a 1-packet queue; got none")
	}

	// The telemetry registry carries the same accounting.
	reg := sys.Telemetry()
	if got := reg.Value("instameasure_worker_dropped_total"); got != float64(dropped) {
		t.Errorf("worker_dropped_total = %g, want %d", got, dropped)
	}
	if got := reg.Value("instameasure_worker_packets_total"); got != float64(processed) {
		t.Errorf("worker_packets_total = %g, want %d", got, processed)
	}
}

func TestLosslessRunHasNoDrops(t *testing.T) {
	tr := testTrace(t, 1000, 30_000)
	sys, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	for w, d := range rep.Dropped {
		if d != 0 {
			t.Errorf("worker %d dropped %d packets on the lossless path", w, d)
		}
	}
	var queued uint64
	for _, q := range rep.Queued {
		queued += q
	}
	if queued != rep.Packets {
		t.Errorf("queued %d != packets %d", queued, rep.Packets)
	}
}

func TestPipelineTelemetryRendering(t *testing.T) {
	tr := testTrace(t, 1000, 40_000)
	sys, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	out := sys.Telemetry().RenderPrometheus()
	for _, want := range []string{
		"instameasure_packets_total ",
		`instameasure_worker_packets_total{worker="0"}`,
		`instameasure_worker_packets_total{worker="1"}`,
		`instameasure_worker_queue_depth{worker="0"}`,
		"instameasure_shard_imbalance ",
		"instameasure_wsaf_probe_length_bucket",
		"instameasure_l1_recycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if got := sys.Telemetry().Value("instameasure_packets_total"); got != float64(rep.Packets) {
		t.Errorf("packets_total = %g, want %d (flush on worker exit)", got, rep.Packets)
	}
	// shard_imbalance gauge agrees with the report.
	gauge := sys.Telemetry().Value("instameasure_shard_imbalance")
	if want := rep.Imbalance(); gauge != want {
		t.Errorf("shard_imbalance gauge = %g, report = %g", gauge, want)
	}
}
