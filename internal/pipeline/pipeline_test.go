package pipeline

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"instameasure/internal/core"
	"instameasure/internal/flowhash"
	"instameasure/internal/packet"
	"instameasure/internal/trace"
)

func testTrace(t *testing.T, flows, pkts int) *trace.Trace {
	t.Helper()
	tr, err := trace.GenerateZipf(trace.ZipfConfig{Flows: flows, TotalPackets: pkts, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testConfig(workers int) Config {
	return Config{
		Workers: workers,
		Engine:  core.Config{SketchMemoryBytes: 16 << 10, WSAFEntries: 1 << 14, Seed: 5},
	}
}

func TestPopcountShardStable(t *testing.T) {
	p := packet.Packet{Key: packet.V4Key(0xF0F0F0F0, 1, 2, 3, packet.ProtoTCP)}
	w := PopcountShard(&p, 4)
	if w != flowhash.PopCount32(0xF0F0F0F0)%4 {
		t.Errorf("shard = %d, want popcount%%4", w)
	}
	for i := 0; i < 10; i++ {
		if PopcountShard(&p, 4) != w {
			t.Fatal("popcount shard not stable")
		}
	}
}

func TestRoundRobinShardCycles(t *testing.T) {
	shard := RoundRobinShard()
	var p packet.Packet
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		w := shard(&p, 4)
		if w < 0 || w >= 4 {
			t.Fatalf("shard %d out of range", w)
		}
		seen[w] = true
	}
	if len(seen) != 4 {
		t.Errorf("round robin visited %d of 4 workers", len(seen))
	}
}

func TestRoundRobinShardStartsAtZero(t *testing.T) {
	shard := RoundRobinShard()
	var p packet.Packet
	for i := 0; i < 9; i++ {
		if w := shard(&p, 4); w != i%4 {
			t.Fatalf("call %d: shard = %d, want %d", i, w, i%4)
		}
	}
}

// scalarOnlySource hides the BatchSource fast path so tests can force the
// pipeline's packet-at-a-time ingest loop.
type scalarOnlySource struct{ inner trace.Source }

func (s scalarOnlySource) Next() (packet.Packet, error) { return s.inner.Next() }

func TestBatchIngestMatchesScalarIngest(t *testing.T) {
	// The BatchSource bulk-read path must leave the system in exactly the
	// state the scalar Next() loop does: same per-worker totals, same
	// merged flow table.
	tr := testTrace(t, 1200, 60_000)

	run := func(src trace.Source) (*System, Report) {
		t.Helper()
		cfg := testConfig(3)
		// Pin the funnel: this test compares the manager's two ingest
		// loops, and only manager dispatch is order-deterministic.
		cfg.Ingest = IngestManager
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		return sys, rep
	}
	if _, ok := tr.Source().(trace.BatchSource); !ok {
		t.Fatal("trace source must implement BatchSource for this test to exercise the bulk path")
	}
	batchSys, batchRep := run(tr.Source())
	scalarSys, scalarRep := run(scalarOnlySource{inner: tr.Source()})

	if batchRep.Packets != scalarRep.Packets || batchRep.Bytes != scalarRep.Bytes {
		t.Fatalf("totals differ: batch %d/%d, scalar %d/%d",
			batchRep.Packets, batchRep.Bytes, scalarRep.Packets, scalarRep.Bytes)
	}
	for w := range batchRep.PerWorker {
		if batchRep.PerWorker[w] != scalarRep.PerWorker[w] {
			t.Errorf("worker %d: batch %d packets, scalar %d", w, batchRep.PerWorker[w], scalarRep.PerWorker[w])
		}
	}
	bm := map[packet.FlowKey]float64{}
	for _, e := range batchSys.MergedSnapshot() {
		bm[e.Key] = e.Pkts
	}
	for _, e := range scalarSys.MergedSnapshot() {
		if bm[e.Key] != e.Pkts {
			t.Fatalf("flow %v: batch %v pkts, scalar %v", e.Key, bm[e.Key], e.Pkts)
		}
	}
}

func TestSteadyStateAllocations(t *testing.T) {
	// Buffer recycling regression guard: a full run must not allocate a
	// batch buffer per flush. The bound (1 object per 500 packets) sits
	// between the recycled steady state (~fixed setup cost only) and the
	// old allocate-per-flush behavior (1 per BatchSize=256 packets).
	tr := testTrace(t, 2000, 400_000)
	sys, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	src := tr.Source()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rep, err := sys.Run(src)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	allocs := after.Mallocs - before.Mallocs
	perPacket := float64(allocs) / float64(rep.Packets)
	if perPacket > 1.0/500 {
		t.Errorf("pipeline allocated %d objects for %d packets (%.5f/packet), want < 0.002/packet",
			allocs, rep.Packets, perPacket)
	}
}

func TestRunProcessesEverything(t *testing.T) {
	tr := testTrace(t, 2000, 50_000)
	for _, workers := range []int{1, 2, 4} {
		sys, err := New(testConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Packets != uint64(len(tr.Packets)) {
			t.Errorf("workers=%d: report packets = %d, want %d",
				workers, rep.Packets, len(tr.Packets))
		}
		var workerTotal uint64
		for _, n := range rep.PerWorker {
			workerTotal += n
		}
		if workerTotal != rep.Packets {
			t.Errorf("workers=%d: per-worker sum %d != %d", workers, workerTotal, rep.Packets)
		}
		if rep.MPPS() <= 0 {
			t.Errorf("workers=%d: MPPS = %v", workers, rep.MPPS())
		}
	}
}

func TestWorkersSeeDisjointFlows(t *testing.T) {
	tr := testTrace(t, 3000, 60_000)
	sys, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(tr.Source()); err != nil {
		t.Fatal(err)
	}
	seen := map[packet.FlowKey]int{}
	for w, eng := range sys.Engines() {
		for _, e := range eng.Snapshot() {
			if prev, dup := seen[e.Key]; dup {
				t.Fatalf("flow %v on workers %d and %d", e.Key, prev, w)
			}
			seen[e.Key] = w
		}
	}
	if len(seen) == 0 {
		t.Fatal("no flows reached any WSAF")
	}
}

func TestMergedSnapshotAccuracy(t *testing.T) {
	tr := testTrace(t, 5000, 200_000)
	sys, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(tr.Source()); err != nil {
		t.Fatal(err)
	}
	// Every 1000+ packet flow must be present and accurate in the merged
	// snapshot.
	merged := map[packet.FlowKey]float64{}
	for _, e := range sys.MergedSnapshot() {
		merged[e.Key] = e.Pkts
	}
	var missing, checked int
	tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
		if ft.Pkts < 1000 {
			return
		}
		checked++
		got, ok := merged[k]
		if !ok {
			missing++
			return
		}
		if relErr := math.Abs(got-float64(ft.Pkts)) / float64(ft.Pkts); relErr > 0.25 {
			t.Errorf("flow %v: est %.0f vs truth %d (rel err %.3f)", k, got, ft.Pkts, relErr)
		}
	})
	if checked == 0 {
		t.Fatal("no large flows")
	}
	if missing > 0 {
		t.Errorf("%d of %d large flows missing from merged snapshot", missing, checked)
	}
}

func TestTotalRegulation(t *testing.T) {
	tr := testTrace(t, 2000, 100_000)
	sys, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(tr.Source()); err != nil {
		t.Fatal(err)
	}
	pkts, emissions := sys.TotalRegulation()
	if pkts != uint64(len(tr.Packets)) {
		t.Errorf("regulator packets = %d, want %d", pkts, len(tr.Packets))
	}
	rate := float64(emissions) / float64(pkts)
	if rate <= 0 || rate > 0.05 {
		t.Errorf("cluster regulation rate %.4f outside (0, 5%%]", rate)
	}
}

func TestQueueSampling(t *testing.T) {
	tr := testTrace(t, 500, 20_000)
	cfg := testConfig(2)
	cfg.SampleEvery = 1000
	cfg.QueueDepth = 4096
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	want := int(rep.Packets) / 1000
	if len(rep.QueueSamples) != want {
		t.Errorf("queue samples = %d, want %d", len(rep.QueueSamples), want)
	}
	for _, s := range rep.QueueSamples {
		if len(s.Depths) != 2 {
			t.Fatalf("sample has %d depths, want 2", len(s.Depths))
		}
		for _, d := range s.Depths {
			if d < 0 || d > cfg.QueueDepth+256 {
				t.Fatalf("queue depth %d out of range", d)
			}
		}
	}
}

func TestRoundRobinBreaksAffinityButKeepsTotals(t *testing.T) {
	tr := testTrace(t, 1000, 50_000)
	cfg := testConfig(4)
	cfg.Shard = RoundRobinShard()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packets != uint64(len(tr.Packets)) {
		t.Errorf("packets = %d, want %d", rep.Packets, len(tr.Packets))
	}
	// Round robin spreads load almost perfectly evenly.
	mean := float64(rep.Packets) / 4
	for w, n := range rep.PerWorker {
		if math.Abs(float64(n)-mean)/mean > 0.01 {
			t.Errorf("worker %d processed %d, want ≈%.0f", w, n, mean)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys, err := New(Config{Engine: core.Config{SketchMemoryBytes: 8 << 10, WSAFEntries: 1 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Workers() != 1 {
		t.Errorf("default workers = %d, want 1", sys.Workers())
	}
}

func TestSingleWorkerMatchesBareEngine(t *testing.T) {
	// A 1-worker pipeline must produce byte-identical estimates to a bare
	// engine with the same seed, because packets arrive in order.
	tr := testTrace(t, 800, 30_000)
	sys, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(tr.Source()); err != nil {
		t.Fatal(err)
	}
	bare, err := core.New(core.Config{SketchMemoryBytes: 16 << 10, WSAFEntries: 1 << 14, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Packets {
		bare.Process(tr.Packets[i])
	}
	pipeEntries := sys.Engines()[0].Snapshot()
	bareEntries := bare.Snapshot()
	if len(pipeEntries) != len(bareEntries) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(pipeEntries), len(bareEntries))
	}
	bareMap := map[packet.FlowKey]float64{}
	for _, e := range bareEntries {
		bareMap[e.Key] = e.Pkts
	}
	for _, e := range pipeEntries {
		if bareMap[e.Key] != e.Pkts {
			t.Fatalf("flow %v: pipeline %v vs bare %v", e.Key, e.Pkts, bareMap[e.Key])
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	tr := testTrace(t, 2000, 100_000)
	sys, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel via a source wrapper after 10k packets, mid-run.
	src := &cancellingSource{inner: tr.Source(), after: 10_000, cancel: cancel}
	rep, err := sys.RunContext(ctx, src)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Packets < 10_000 || rep.Packets >= uint64(len(tr.Packets)) {
		t.Errorf("dispatched %d packets; want partial progress past 10k", rep.Packets)
	}
	// All dispatched packets must have been drained by the workers.
	var processed uint64
	for _, n := range rep.PerWorker {
		processed += n
	}
	if processed != rep.Packets {
		t.Errorf("workers processed %d of %d dispatched", processed, rep.Packets)
	}
}

type cancellingSource struct {
	inner  trace.Source
	after  int
	n      int
	cancel func()
}

func (s *cancellingSource) Next() (packet.Packet, error) {
	s.n++
	if s.n == s.after {
		s.cancel()
	}
	return s.inner.Next()
}
