package pipeline

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"instameasure/internal/packet"
	"instameasure/internal/trace"
)

// exactCounts tallies ground-truth per-flow packet counts from the trace.
func exactCounts(tr *trace.Trace) map[packet.FlowKey]float64 {
	m := make(map[packet.FlowKey]float64)
	for i := range tr.Packets {
		m[tr.Packets[i].Key]++
	}
	return m
}

func TestShardedModeSelection(t *testing.T) {
	tr := testTrace(t, 100, 1000)

	// Auto + splittable source → sharded runs (observable: it works and
	// conserves packets; the mode itself is asserted via the forced paths
	// below).
	if on, err := mustSystem(t, testConfig(2)).useSharded(tr.Source()); err != nil || !on {
		t.Errorf("auto mode on splittable source: sharded=%v err=%v, want true", on, err)
	}
	// Auto + plain source → manager.
	if on, err := mustSystem(t, testConfig(2)).useSharded(scalarOnlySource{inner: tr.Source()}); err != nil || on {
		t.Errorf("auto mode on plain source: sharded=%v err=%v, want false", on, err)
	}
	// Legacy ShardFunc forces the manager even on a splittable source.
	cfg := testConfig(2)
	cfg.Shard = PopcountShard
	if on, err := mustSystem(t, cfg).useSharded(tr.Source()); err != nil || on {
		t.Errorf("legacy Shard: sharded=%v err=%v, want false", on, err)
	}
	// Queue sampling forces the manager.
	cfg = testConfig(2)
	cfg.SampleEvery = 100
	if on, err := mustSystem(t, cfg).useSharded(tr.Source()); err != nil || on {
		t.Errorf("SampleEvery: sharded=%v err=%v, want false", on, err)
	}
	// Forced sharded mode errors loudly when its requirements are unmet.
	cfg = testConfig(2)
	cfg.Ingest = IngestSharded
	if _, err := mustSystem(t, cfg).useSharded(scalarOnlySource{inner: tr.Source()}); err == nil {
		t.Error("IngestSharded on a plain source: want error")
	}
	cfg.Shard = PopcountShard
	if _, err := mustSystem(t, cfg).useSharded(tr.Source()); err == nil {
		t.Error("IngestSharded with legacy Shard: want error")
	}
}

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestShardedConservation: the lossless shared-nothing run processes every
// trace packet exactly once — totals, bytes, and per-worker sums all
// reconcile, with zero drops.
func TestShardedConservation(t *testing.T) {
	tr := testTrace(t, 1500, 120_000)
	var wantBytes uint64
	for i := range tr.Packets {
		wantBytes += uint64(tr.Packets[i].Len)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := testConfig(workers)
		cfg.Ingest = IngestSharded
		sys := mustSystem(t, cfg)
		rep, err := sys.Run(tr.Source())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Packets != uint64(len(tr.Packets)) || rep.Bytes != wantBytes {
			t.Errorf("workers=%d: packets/bytes %d/%d, want %d/%d",
				workers, rep.Packets, rep.Bytes, len(tr.Packets), wantBytes)
		}
		var perWorker uint64
		for w := range rep.PerWorker {
			perWorker += rep.PerWorker[w]
			if rep.Dropped[w] != 0 {
				t.Errorf("workers=%d: worker %d dropped %d on the lossless path", workers, w, rep.Dropped[w])
			}
			if rep.Queued[w] != rep.PerWorker[w] {
				t.Errorf("workers=%d: worker %d queued %d != processed %d",
					workers, w, rep.Queued[w], rep.PerWorker[w])
			}
		}
		if perWorker != rep.Packets {
			t.Errorf("workers=%d: per-worker sum %d != packets %d", workers, perWorker, rep.Packets)
		}
		// Telemetry agrees with the report.
		if got := sys.Telemetry().Value("instameasure_worker_packets_total"); got != float64(perWorker) {
			t.Errorf("workers=%d: worker_packets_total = %g, want %d", workers, got, perWorker)
		}
	}
}

// TestShardedMatchesManagerEnvelope: the shared-nothing run and the manager
// funnel shard identically (same hash, same policy), so per-worker loads
// are bit-equal; only sketch randomness differs with arrival order, so
// per-flow estimates of heavy flows from both modes must sit within the
// same accuracy envelope of ground truth.
func TestShardedMatchesManagerEnvelope(t *testing.T) {
	tr := testTrace(t, 800, 150_000)
	truth := exactCounts(tr)

	run := func(mode IngestMode) (*System, Report) {
		t.Helper()
		cfg := testConfig(4)
		cfg.Engine.WSAFEntries = 1 << 12
		cfg.Ingest = mode
		sys := mustSystem(t, cfg)
		rep, err := sys.Run(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		return sys, rep
	}
	mgrSys, mgrRep := run(IngestManager)
	shSys, shRep := run(IngestSharded)

	if mgrRep.Packets != shRep.Packets || mgrRep.Bytes != shRep.Bytes {
		t.Fatalf("totals differ: manager %d/%d, sharded %d/%d",
			mgrRep.Packets, mgrRep.Bytes, shRep.Packets, shRep.Bytes)
	}
	for w := range mgrRep.PerWorker {
		if mgrRep.PerWorker[w] != shRep.PerWorker[w] {
			t.Errorf("worker %d load: manager %d, sharded %d — shard policy must not depend on ingest mode",
				w, mgrRep.PerWorker[w], shRep.PerWorker[w])
		}
	}

	// Accuracy envelope on heavy flows (≥500 true packets): both modes'
	// WSAF estimates within 30% of truth. The regulator absorbs a flow's
	// early packets, so estimates sit below truth by a bounded margin.
	envelope := func(name string, sys *System) int {
		t.Helper()
		est := map[packet.FlowKey]float64{}
		for _, e := range sys.MergedSnapshot() {
			est[e.Key] = e.Pkts
		}
		heavy := 0
		for k, want := range truth {
			if want < 500 {
				continue
			}
			heavy++
			got, ok := est[k]
			if !ok {
				t.Errorf("%s: heavy flow (%.0f pkts) missing from WSAF", name, want)
				continue
			}
			if relErr := math.Abs(got-want) / want; relErr > 0.30 {
				t.Errorf("%s: heavy flow estimate %.0f vs truth %.0f (rel err %.2f)", name, got, want, relErr)
			}
		}
		return heavy
	}
	if h := envelope("manager", mgrSys); h == 0 {
		t.Fatal("test trace produced no heavy flows; envelope check vacuous")
	}
	envelope("sharded", shSys)
}

// TestShardedSingleHashPerPacket: with one worker the sharded path is
// single-goroutine end to end, so the non-atomic hash counter can witness
// the hashonce invariant: ingest hashes each packet exactly once and the
// hash rides the batch into the engine.
func TestShardedSingleHashPerPacket(t *testing.T) {
	tr := testTrace(t, 300, 20_000)
	cfg := testConfig(1)
	cfg.Ingest = IngestSharded
	sys := mustSystem(t, cfg)

	packet.SetHashCounting(true)
	defer packet.SetHashCounting(false)
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if got := packet.HashCount(); got != rep.Packets {
		t.Errorf("hash calls = %d for %d packets; sharded ingest must hash exactly once per packet",
			got, rep.Packets)
	}
}

// TestShardedDropAccounting: with tiny rings and a hot cross-shard load the
// lossy policy drops at the exchange, and the books still reconcile:
// processed + dropped = offered.
func TestShardedDropAccounting(t *testing.T) {
	tr := testTrace(t, 2000, 200_000)
	cfg := testConfig(2)
	cfg.Ingest = IngestSharded
	cfg.DropWhenFull = true
	cfg.QueueDepth = 2
	sys := mustSystem(t, cfg)
	rep, err := sys.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	var processed, dropped uint64
	for w := range rep.PerWorker {
		processed += rep.PerWorker[w]
		dropped += rep.Dropped[w]
	}
	if processed+dropped != rep.Packets {
		t.Errorf("processed %d + dropped %d != packets %d", processed, dropped, rep.Packets)
	}
	if got := sys.Telemetry().Value("instameasure_worker_dropped_total"); got != float64(dropped) {
		t.Errorf("worker_dropped_total = %g, want %d", got, dropped)
	}
}

// TestShardedCancellation: cancelling the context stops the per-worker
// readers; the run returns promptly with a wrapped ctx error and a report
// covering what was ingested before the cut.
func TestShardedCancellation(t *testing.T) {
	tr := testTrace(t, 1000, 500_000)
	cfg := testConfig(4)
	cfg.Ingest = IngestSharded
	sys := mustSystem(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := sys.RunContext(ctx, tr.Source())
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if rep.Packets >= 500_000 {
		t.Errorf("cancelled run still ingested the whole trace (%d packets)", rep.Packets)
	}
}

// TestShardedSteadyStateAllocations: the shared-nothing run reuses its
// batches, staging buffers, and rings — steady state must not allocate per
// burst (same bound as the manager-mode guard).
func TestShardedSteadyStateAllocations(t *testing.T) {
	tr := testTrace(t, 2000, 400_000)
	cfg := testConfig(2)
	cfg.Ingest = IngestSharded
	sys := mustSystem(t, cfg)
	src := tr.Source()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rep, err := sys.Run(src)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	allocs := after.Mallocs - before.Mallocs
	if allocs > rep.Packets/500 {
		t.Errorf("run allocated %d objects over %d packets (> 1 per 500)", allocs, rep.Packets)
	}
}

// TestHashShardBalancedVsPopcount is the shard-policy satellite. Flow
// sizes are held uniform so the measurement isolates the policy itself
// (on a Zipf trace the elephant flows dominate Imbalance() under any
// flow-affine policy). Popcount of a random 32-bit address is binomial —
// concentrated around 16 — so with 8 workers the residue classes carry
// visibly unequal mass, while HashShard's fixed-point split of the flow
// hash spreads flows near-uniformly. Both run the shared-nothing ingest;
// only the policy differs.
func TestHashShardBalancedVsPopcount(t *testing.T) {
	const flows, perFlow = 20_000, 10
	pkts := make([]packet.Packet, 0, flows*perFlow)
	rng := uint64(0x5EED1)
	for f := 0; f < flows; f++ {
		// splitmix64 step: deterministic pseudo-random addresses.
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		key := packet.V4Key(uint32(z), uint32(z>>32), uint16(f), 443, packet.ProtoTCP)
		for i := 0; i < perFlow; i++ {
			pkts = append(pkts, packet.Packet{Key: key, Len: 200, TS: int64(f*perFlow + i)})
		}
	}
	tr := trace.FromPackets(pkts)

	run := func(policy HashShardFunc) Report {
		t.Helper()
		cfg := testConfig(8)
		cfg.Ingest = IngestSharded
		cfg.HashPolicy = policy
		sys := mustSystem(t, cfg)
		rep, err := sys.Run(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	hash := run(nil) // nil selects HashShard, the default
	pop := run(PopcountHashShard)

	if hash.Imbalance() >= pop.Imbalance() {
		t.Errorf("HashShard imbalance %.4f not better than popcount %.4f",
			hash.Imbalance(), pop.Imbalance())
	}
	if pop.Imbalance() < 1.10 {
		t.Errorf("popcount imbalance %.4f, expected visible binomial skew", pop.Imbalance())
	}
	if hash.Imbalance() > 1.08 {
		t.Errorf("HashShard imbalance %.4f, expected near-uniform spread", hash.Imbalance())
	}
	t.Logf("imbalance: HashShard %.4f, PopcountHashShard %.4f", hash.Imbalance(), pop.Imbalance())
}

// TestHashShardRange: the fixed-point scaling maps the full hash space into
// [0, workers) without modulo bias artifacts at the edges.
func TestHashShardRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, h := range []uint64{0, 1, 1 << 31, 1 << 32, ^uint64(0), 0xDEADBEEFCAFEF00D} {
			w := HashShard(h, nil, workers)
			if w < 0 || w >= workers {
				t.Fatalf("HashShard(%#x, %d) = %d out of range", h, workers, w)
			}
		}
		if HashShard(0, nil, workers) != 0 || HashShard(^uint64(0), nil, workers) != workers-1 {
			t.Errorf("workers=%d: extremes must map to first/last worker", workers)
		}
	}
}
