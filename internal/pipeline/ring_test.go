package pipeline

import (
	"runtime"
	"sync"
	"testing"

	"instameasure/internal/packet"
)

func mkhpkt(i int) hpkt {
	return hpkt{
		p: packet.Packet{
			Key: packet.V4Key(uint32(i), ^uint32(i), uint16(i), uint16(i>>8)+1, packet.ProtoUDP),
			Len: uint16(i%1400) + 64,
			TS:  int64(i),
		},
		h: uint64(i)*0x9E3779B97F4A7C15 + 1,
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {4096, 4096}, {4097, 8192},
	} {
		r := newRing(c.ask)
		if len(r.buf) != c.want {
			t.Errorf("newRing(%d): capacity %d, want %d", c.ask, len(r.buf), c.want)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	// A tiny ring cycled many times exercises index wrap and the mask
	// arithmetic; every element must come out once, in order, intact.
	r := newRing(8)
	next := 0
	got := 0
	buf := make([]hpkt, 5)
	for got < 1000 {
		for i := 0; i < 3 && next < 1000; i++ {
			if r.pushBatch([]hpkt{mkhpkt(next)}) == 1 {
				next++
			}
		}
		n := r.popBatch(buf)
		for i := 0; i < n; i++ {
			if want := mkhpkt(got); buf[i] != want {
				t.Fatalf("element %d corrupted: got %+v want %+v", got, buf[i], want)
			}
			got++
		}
	}
	if r.len() != next-got {
		t.Errorf("len() = %d, want %d", r.len(), next-got)
	}
}

func TestRingPushBoundedByFree(t *testing.T) {
	r := newRing(8)
	src := make([]hpkt, 20)
	for i := range src {
		src[i] = mkhpkt(i)
	}
	if n := r.pushBatch(src); n != 8 {
		t.Fatalf("push into empty ring of 8 accepted %d", n)
	}
	if n := r.pushBatch(src[8:]); n != 0 {
		t.Fatalf("push into full ring accepted %d", n)
	}
	dst := make([]hpkt, 3)
	if n := r.popBatch(dst); n != 3 {
		t.Fatalf("pop returned %d", n)
	}
	if n := r.pushBatch(src[8:]); n != 3 {
		t.Fatalf("push after partial drain accepted %d, want 3", n)
	}
}

func TestRingCloseWhileFull(t *testing.T) {
	// Closing a full ring must not lose the buffered elements: drained()
	// stays false until the consumer has popped every one.
	r := newRing(4)
	for i := 0; i < 4; i++ {
		if r.pushBatch([]hpkt{mkhpkt(i)}) != 1 {
			t.Fatal("fill failed")
		}
	}
	r.close()
	if r.drained() {
		t.Fatal("drained() true with 4 buffered elements")
	}
	buf := make([]hpkt, 3)
	seen := 0
	for !r.drained() {
		n := r.popBatch(buf)
		if n == 0 {
			t.Fatal("ring not drained but popBatch returned 0")
		}
		for i := 0; i < n; i++ {
			if buf[i] != mkhpkt(seen) {
				t.Fatalf("element %d corrupted after close", seen)
			}
			seen++
		}
	}
	if seen != 4 {
		t.Fatalf("drained after %d elements, want 4", seen)
	}
	if r.popBatch(buf) != 0 {
		t.Fatal("pop after drain returned elements")
	}
}

// TestRingConcurrentStress is the -race witness for the SPSC protocol: one
// producer and one consumer hammer a small ring so the cursors wrap
// thousands of times, and the consumer checks every element arrives
// exactly once, in order, uncorrupted.
func TestRingConcurrentStress(t *testing.T) {
	const total = 200_000
	r := newRing(64)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		src := make([]hpkt, 17)
		next := 0
		for next < total {
			n := len(src)
			if rem := total - next; n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				src[i] = mkhpkt(next + i)
			}
			pushed := 0
			for pushed < n {
				k := r.pushBatch(src[pushed:n])
				if k == 0 {
					runtime.Gosched()
				}
				pushed += k
			}
			next += n
		}
		r.close()
	}()

	go func() { // consumer
		defer wg.Done()
		buf := make([]hpkt, 23)
		seen := 0
		for !r.drained() {
			n := r.popBatch(buf)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < n; i++ {
				if buf[i] != mkhpkt(seen) {
					t.Errorf("element %d reordered or corrupted", seen)
					return
				}
				seen++
			}
		}
		if seen != total {
			t.Errorf("consumer saw %d of %d elements", seen, total)
		}
	}()
	wg.Wait()
}
