// Package wsaf implements the In-DRAM Working Set of Active Flows: an
// open-addressing hash table holding one entry per active flow (32-bit flow
// ID, packet counter, byte counter, timestamps, and the full 5-tuple —
// the paper's 33-byte entry).
//
// Collision handling follows Section III.B: quadratic probing with
// h(k,i) = hash(k) + (i+i²)/2 mod m over a power-of-two table (triangular
// offsets visit every slot), a fixed probe limit, and a probe-limit-based
// second-chance (clock) replacement policy that evicts expired or least
// significant mice entries inline — garbage collection happens during
// probing rather than on a separate core.
package wsaf

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"instameasure/internal/packet"
	"instameasure/internal/telemetry"
)

// Probing selects the probe sequence.
type Probing int

// Probing policies.
const (
	// ProbeQuadratic is the paper's h(k,i) = hash(k) + (i+i²)/2 mod m;
	// over a power-of-two table the triangular offsets visit every slot.
	ProbeQuadratic Probing = iota + 1
	// ProbeLinear is h(k,i) = hash(k) + i mod m — the ablation baseline;
	// it suffers primary clustering at high load.
	ProbeLinear
)

// Eviction selects the replacement policy when every probed slot is live.
type Eviction int

// Eviction policies.
const (
	// EvictSecondChance is the paper's clock policy: recently updated
	// entries survive one pass; among unreferenced entries the first is
	// evicted, falling back to the smallest flow.
	EvictSecondChance Eviction = iota + 1
	// EvictFirst always evicts the first probed slot — the naive
	// FIFO-flavored ablation baseline that happily discards elephants.
	EvictFirst
)

// Config parameterizes a Table.
type Config struct {
	// Entries is the table capacity; must be a power of two (the paper
	// fixes 2^20 for all experiments).
	Entries int
	// ProbeLimit bounds the probe sequence per operation. 0 means 16.
	ProbeLimit int
	// TTL is the inactivity window, in trace nanoseconds, after which an
	// entry is garbage-collectable during probing. 0 disables TTL GC.
	TTL int64
	// Probing selects the probe sequence; 0 means ProbeQuadratic.
	Probing Probing
	// Eviction selects the replacement policy; 0 means EvictSecondChance.
	Eviction Eviction
	// Seed feeds flow-key hashing.
	Seed uint64
}

// Validation errors.
var (
	ErrEntriesPow2 = errors.New("wsaf: Entries must be a positive power of two")
)

// EntryBytes is the paper's accounting size of one WSAF entry: 32-bit flow
// ID + 32-bit packet counter + 32-bit byte counter + 64-bit timestamp +
// 104-bit 5-tuple = 33 bytes.
const EntryBytes = 33

// Outcome classifies what Accumulate did.
type Outcome int

// Accumulate outcomes.
const (
	// Updated: the flow already had an entry; counters were increased.
	Updated Outcome = iota + 1
	// Inserted: a new entry was placed in an empty slot.
	Inserted
	// Reclaimed: a new entry replaced an expired one (inline GC).
	Reclaimed
	// Evicted: a new entry replaced a live entry chosen by the
	// second-chance policy.
	Evicted
	// Dropped: every probed slot held a live, recently-referenced entry
	// and even eviction could not place the flow (only possible when the
	// clock pass is disabled); the update was lost.
	Dropped
)

// Entry is one WSAF record. Pkts and Bytes are float64 because
// FlowRegulator emits fractional estimates.
type Entry struct {
	FlowID     uint32
	Key        packet.FlowKey
	Pkts       float64
	Bytes      float64
	FirstSeen  int64
	LastUpdate int64

	used   bool
	chance bool
}

// Stats aggregates table activity counters.
type Stats struct {
	Updates    uint64
	Inserts    uint64
	Reclaims   uint64
	Evictions  uint64
	Drops      uint64
	ProbeSteps uint64
}

// Telemetry carries the table's metric handles. Accumulate runs only on
// FlowRegulator passthroughs (~1% of packets), so updating these on every
// call is cheap. All handles must be set when the struct is non-nil.
type Telemetry struct {
	// Outcomes[o-1] counts Accumulate results by Outcome (Updated..Dropped).
	Outcomes [5]telemetry.CounterShard
	// ProbeLength observes the number of slots probed per Accumulate —
	// the paper's quadratic-vs-linear probing quantity.
	ProbeLength telemetry.HistogramShard
	// Occupancy publishes the live entry count (single-writer Set).
	Occupancy telemetry.GaugeShard
}

// Table is a WSAF instance. It is not safe for concurrent use; the pipeline
// shards one Table per worker.
type Table struct {
	entries    []Entry
	mask       uint64
	probeLimit int
	ttl        int64
	probing    Probing
	eviction   Eviction
	seed       uint64
	tm         *Telemetry

	size     int
	stats    Stats
	probeBuf []int // reused across Accumulate calls to avoid per-packet allocation
	victim   Entry // scratch for the displaced entry of the last eviction
}

// New builds a Table from cfg.
func New(cfg Config) (*Table, error) {
	if cfg.Entries <= 0 || bits.OnesCount(uint(cfg.Entries)) != 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrEntriesPow2, cfg.Entries)
	}
	probeLimit := cfg.ProbeLimit
	if probeLimit <= 0 {
		probeLimit = 16
	}
	if probeLimit > cfg.Entries {
		probeLimit = cfg.Entries
	}
	probing := cfg.Probing
	if probing == 0 {
		probing = ProbeQuadratic
	}
	eviction := cfg.Eviction
	if eviction == 0 {
		eviction = EvictSecondChance
	}
	return &Table{
		entries:    make([]Entry, cfg.Entries),
		mask:       uint64(cfg.Entries - 1),
		probeLimit: probeLimit,
		ttl:        cfg.TTL,
		probing:    probing,
		eviction:   eviction,
		seed:       cfg.Seed,
		probeBuf:   make([]int, 0, probeLimit),
	}, nil
}

// MustNew is New for statically-known-good configs; it panics on error.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Accumulate adds (pkts, bytes) to key's entry, inserting it if absent.
// now is the trace timestamp driving TTL garbage collection and the
// second-chance policy. It returns the outcome and, for Evicted, the entry
// that was displaced. The returned Entry is the caller's own copy — it is
// never aliased to table storage or to the victim scratch, so it remains
// valid across any number of later table operations
// (TestEvictedEntrySurvivesLaterCalls enforces this).
func (t *Table) Accumulate(key packet.FlowKey, pkts, bytes float64, now int64) (Outcome, *Entry) {
	o, _ := t.AccumulateHashed(key.Hash64(t.seed), key, pkts, bytes, now)
	if o != Evicted {
		return o, nil
	}
	v := t.victim
	return o, &v
}

// AccumulateHashed is Accumulate with the key's precomputed Hash64 — the
// zero-rehash hot path: the engine hashes each packet once and threads the
// value through the FlowRegulator and into the table. It returns the live
// entry for key after the update (nil only for Dropped); the pointer is
// into the table and MUST NOT be held across the next mutating call — any
// later Accumulate may relocate, evict, or overwrite the slot. Copy the
// fields out before touching the table again. For Evicted, the displaced
// entry is retained in the table's victim scratch until the next eviction;
// read it through Victim (a copy) or use Accumulate, which surfaces it.
//
//im:hotpath
func (t *Table) AccumulateHashed(h uint64, key packet.FlowKey, pkts, bytes float64, now int64) (Outcome, *Entry) {
	id := uint32(h ^ (h >> 32))

	freeSlot := -1
	probed := t.probeBuf[:0]
	steps := 0

	for i := 0; i < t.probeLimit; i++ {
		slot := t.slot(h, i)
		steps++
		e := &t.entries[slot]
		switch {
		case !e.used:
			if freeSlot < 0 {
				freeSlot = slot
			}
			// An empty slot ends the probe chain: the key cannot be
			// stored past the first hole it would have filled.
			i = t.probeLimit
		case e.FlowID == id && e.Key == key:
			if t.expired(e, now) {
				// The flow's own entry sat idle past the TTL. Lookup and
				// Snapshot already treat it as dead, so resuming the stale
				// counters here would resurrect a flow the rest of the API
				// says expired: start a fresh record instead (inline GC of
				// our own slot).
				t.stats.Reclaims++
				t.size--
				t.place(e, id, key, pkts, bytes, now)
				return t.note(Reclaimed, steps), e
			}
			e.Pkts += pkts
			e.Bytes += bytes
			e.LastUpdate = now
			e.chance = true
			t.stats.Updates++
			return t.note(Updated, steps), e
		case t.expired(e, now):
			if freeSlot < 0 {
				freeSlot = slot
			}
			probed = append(probed, slot)
		default:
			probed = append(probed, slot)
		}
	}

	if freeSlot >= 0 {
		slot := &t.entries[freeSlot]
		outcome := Inserted
		if slot.used {
			outcome = Reclaimed
			t.stats.Reclaims++
			t.size--
		} else {
			t.stats.Inserts++
		}
		t.place(slot, id, key, pkts, bytes, now)
		return t.note(outcome, steps), slot
	}

	victimSlot := -1
	switch t.eviction {
	case EvictFirst:
		if len(probed) > 0 {
			victimSlot = probed[0]
		}
	default:
		// Second-chance clock pass over the probed window: entries
		// holding a chance bit get it cleared and survive; the first
		// entry without one is the eviction candidate. If every entry
		// had its chance (all now cleared), evict the smallest flow —
		// mice first, per the paper.
		for _, slot := range probed {
			e := &t.entries[slot]
			if e.chance {
				e.chance = false
				continue
			}
			victimSlot = slot
			break
		}
		if victimSlot < 0 {
			minPkts := -1.0
			for _, slot := range probed {
				if e := &t.entries[slot]; minPkts < 0 || e.Pkts < minPkts {
					minPkts = e.Pkts
					victimSlot = slot
				}
			}
		}
	}
	if victimSlot < 0 {
		t.stats.Drops++
		return t.note(Dropped, steps), nil
	}

	t.victim = t.entries[victimSlot]
	t.size--
	slot := &t.entries[victimSlot]
	t.place(slot, id, key, pkts, bytes, now)
	t.stats.Evictions++
	return t.note(Evicted, steps), slot
}

// note folds one Accumulate's probe work and outcome into the stats and,
// when attached, the telemetry registry; it returns o for tail-calling.
func (t *Table) note(o Outcome, steps int) Outcome {
	t.stats.ProbeSteps += uint64(steps)
	if t.tm != nil {
		t.tm.Outcomes[o-1].Inc()
		t.tm.ProbeLength.Observe(uint64(steps))
		t.tm.Occupancy.Set(int64(t.size))
	}
	return o
}

// Victim returns a copy of the entry displaced by the most recent Evicted
// outcome. It is only meaningful immediately after AccumulateHashed
// reported Evicted: the scratch is overwritten by the next eviction.
// Accumulate callers get the same copy returned directly.
func (t *Table) Victim() Entry { return t.victim }

// SetTelemetry attaches metric handles updated on every Accumulate.
// Pass nil to detach.
func (t *Table) SetTelemetry(tm *Telemetry) {
	t.tm = tm
	if tm != nil {
		tm.Occupancy.Set(int64(t.size))
	}
}

// Lookup returns the entry for key, if present and not expired at now.
func (t *Table) Lookup(key packet.FlowKey, now int64) (Entry, bool) {
	return t.LookupHashed(key.Hash64(t.seed), key, now)
}

// LookupHashed is Lookup with the key's precomputed Hash64, for callers
// that already paid for the hash (the engine computes it once per packet).
//
//im:hotpath
func (t *Table) LookupHashed(h uint64, key packet.FlowKey, now int64) (Entry, bool) {
	id := uint32(h ^ (h >> 32))
	for i := 0; i < t.probeLimit; i++ {
		slot := t.slot(h, i)
		e := &t.entries[slot]
		if !e.used {
			return Entry{}, false
		}
		if e.FlowID == id && e.Key == key {
			if t.expired(e, now) {
				return Entry{}, false
			}
			return *e, true
		}
	}
	return Entry{}, false
}

// Snapshot copies out all live entries (expired ones excluded when a TTL is
// configured and now > 0).
func (t *Table) Snapshot(now int64) []Entry {
	out := make([]Entry, 0, t.size)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.used {
			continue
		}
		if now > 0 && t.expired(e, now) {
			continue
		}
		out = append(out, *e)
	}
	return out
}

// TopK returns the k largest live entries by the given metric function
// (e.g. packets or bytes), largest first.
func (t *Table) TopK(k int, now int64, metric func(*Entry) float64) []Entry {
	snap := t.Snapshot(now)
	sort.Slice(snap, func(i, j int) bool {
		return metric(&snap[i]) > metric(&snap[j])
	})
	if k < len(snap) {
		snap = snap[:k]
	}
	return snap
}

// Len returns the number of occupied slots (including expired-but-not-yet-
// reclaimed entries).
func (t *Table) Len() int { return t.size }

// Capacity returns the table size in entries.
func (t *Table) Capacity() int { return len(t.entries) }

// LoadFactor is Len/Capacity.
func (t *Table) LoadFactor() float64 {
	return float64(t.size) / float64(len(t.entries))
}

// MemoryBytes reports DRAM consumption using the paper's 33-byte entries.
func (t *Table) MemoryBytes() int { return len(t.entries) * EntryBytes }

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// Reset clears all entries and statistics.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = Entry{}
	}
	t.size = 0
	t.stats = Stats{}
	if t.tm != nil {
		t.tm.Occupancy.Set(0)
	}
}

func (t *Table) place(e *Entry, id uint32, key packet.FlowKey, pkts, bytes float64, now int64) {
	*e = Entry{
		FlowID:     id,
		Key:        key,
		Pkts:       pkts,
		Bytes:      bytes,
		FirstSeen:  now,
		LastUpdate: now,
		used:       true,
		chance:     true,
	}
	t.size++
}

func (t *Table) expired(e *Entry, now int64) bool {
	return t.ttl > 0 && now-e.LastUpdate > t.ttl
}

// slot returns the i-th probe position for hash h under the configured
// probing policy.
func (t *Table) slot(h uint64, i int) int {
	if t.probing == ProbeLinear {
		return int((h + uint64(i)) & t.mask)
	}
	return int((h + triangular(i)) & t.mask)
}

// triangular returns i(i+1)/2, the paper's 0.5i+0.5i² probe offset; over a
// power-of-two table the sequence visits all slots.
func triangular(i int) uint64 {
	u := uint64(i)
	return u * (u + 1) / 2
}
