package wsaf

import (
	"testing"

	"instameasure/internal/flowhash"
	"instameasure/internal/packet"
)

// batchOps builds a reusable op stream over a small keyspace so the batch
// exercises updates, inserts, reclaims, and evictions against a tight
// table.
func batchOps(n, keyspace int, seed uint64) []Op {
	rng := flowhash.NewRand(seed)
	ops := make([]Op, n)
	for i := range ops {
		k := rng.Intn(keyspace)
		key := packet.V4Key(uint32(k), uint32(k)*7+1, uint16(k%60000)+1, 80, packet.ProtoTCP)
		ops[i] = Op{
			Hash:  key.Hash64(41),
			Key:   key,
			Pkts:  1,
			Bytes: float64(64 + rng.Intn(1400)),
			TS:    int64(i) * 1000,
		}
	}
	return ops
}

// TestAccumulateBatchMatchesScalar pins the batch path's contract: state
// transitions bit-identical to the same ops applied one at a time. The
// prefetch pass must be semantically invisible.
func TestAccumulateBatchMatchesScalar(t *testing.T) {
	cfg := Config{Entries: 1 << 8, ProbeLimit: 8, TTL: 2_000_000, Seed: 41}
	batched := MustNew(cfg)
	scalar := MustNew(cfg)

	ops := batchOps(20_000, 4*cfg.Entries, 99)
	outB := make([]Outcome, len(ops))
	outS := make([]Outcome, len(ops))

	for base := 0; base < len(ops); base += 256 {
		end := min(base+256, len(ops))
		batched.AccumulateBatch(ops[base:end], outB[base:end])
	}
	for i := range ops {
		op := &ops[i]
		outS[i], _ = scalar.AccumulateHashed(op.Hash, op.Key, op.Pkts, op.Bytes, op.TS)
	}

	for i := range ops {
		if outB[i] != outS[i] {
			t.Fatalf("op %d: batch outcome %v != scalar %v", i, outB[i], outS[i])
		}
	}
	if batched.Stats() != scalar.Stats() {
		t.Fatalf("stats diverged: batch %+v scalar %+v", batched.Stats(), scalar.Stats())
	}
	if batched.Len() != scalar.Len() {
		t.Fatalf("size diverged: batch %d scalar %d", batched.Len(), scalar.Len())
	}
	snapB := batched.Snapshot(0)
	snapS := scalar.Snapshot(0)
	if len(snapB) != len(snapS) {
		t.Fatalf("snapshot length diverged: %d vs %d", len(snapB), len(snapS))
	}
	for i := range snapB {
		if snapB[i] != snapS[i] {
			t.Fatalf("snapshot[%d] diverged:\n batch  %+v\n scalar %+v", i, snapB[i], snapS[i])
		}
	}
}

// TestLookupBatchMatchesScalar does the same for the read side, over a mix
// of present, absent, and expired keys.
func TestLookupBatchMatchesScalar(t *testing.T) {
	cfg := Config{Entries: 1 << 8, ProbeLimit: 8, TTL: 1_000_000, Seed: 41}
	tab := MustNew(cfg)
	ops := batchOps(5_000, 1<<10, 7)
	outcomes := make([]Outcome, len(ops))
	tab.AccumulateBatch(ops, outcomes)

	now := ops[len(ops)-1].TS
	probe := batchOps(2_000, 1<<11, 8) // half the keyspace was never inserted
	hashes := make([]uint64, len(probe))
	keys := make([]packet.FlowKey, len(probe))
	for i := range probe {
		hashes[i] = probe[i].Hash
		keys[i] = probe[i].Key
	}
	entries := make([]Entry, len(probe))
	ok := make([]bool, len(probe))
	tab.LookupBatch(hashes, keys, now, entries, ok)

	hits := 0
	for i := range probe {
		wantE, wantOK := tab.LookupHashed(hashes[i], keys[i], now)
		if ok[i] != wantOK || entries[i] != wantE {
			t.Fatalf("lookup %d diverged: batch (%v,%v) scalar (%v,%v)", i, entries[i], ok[i], wantE, wantOK)
		}
		if ok[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(probe) {
		t.Fatalf("degenerate lookup mix: %d/%d hits — test would not cover both branches", hits, len(probe))
	}
}

// TestBatchPathsZeroAlloc holds the batch walk to the hot-path budget.
func TestBatchPathsZeroAlloc(t *testing.T) {
	cfg := Config{Entries: 1 << 10, ProbeLimit: 16, Seed: 41}
	tab := MustNew(cfg)
	ops := batchOps(256, 1<<11, 3)
	outcomes := make([]Outcome, len(ops))
	hashes := make([]uint64, len(ops))
	keys := make([]packet.FlowKey, len(ops))
	for i := range ops {
		hashes[i] = ops[i].Hash
		keys[i] = ops[i].Key
	}
	entries := make([]Entry, len(ops))
	ok := make([]bool, len(ops))

	if allocs := testing.AllocsPerRun(100, func() {
		tab.AccumulateBatch(ops, outcomes)
	}); allocs != 0 {
		t.Errorf("AccumulateBatch allocates: %.2f allocs/run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tab.LookupBatch(hashes, keys, 0, entries, ok)
	}); allocs != 0 {
		t.Errorf("LookupBatch allocates: %.2f allocs/run", allocs)
	}
}
