package wsaf

import (
	"unsafe"

	"instameasure/internal/packet"
	"instameasure/internal/prefetch"
)

// The batched table walk below is the paper's DRAM-latency answer in
// software. A 2^20-entry WSAF cannot fit in cache, so the first probe of
// each flow is a compulsory miss and a scalar Accumulate loop serializes
// those misses: one full memory round trip per packet. Processing a burst
// in two passes — first touch every packet's first probe slot with a
// prefetch hint, then run the ordinary probe logic — turns the serial miss
// chain into overlapped in-flight loads. The window below bounds how many
// lines are in flight at once so early prefetches are not evicted before
// pass two reaches them.
//
// prefetchWindow is sized for commodity cores: 32 ops touch ≤64 cache
// lines (two per entry), comfortably inside a 32 KiB L1D while still far
// past the 10–16 outstanding misses the hardware can overlap.
const prefetchWindow = 32

// Op is one batched Accumulate: the packet's precomputed flow hash, its
// key, the regulator-estimated increments, and the trace timestamp.
type Op struct {
	Hash  uint64
	Key   packet.FlowKey
	Pkts  float64
	Bytes float64
	TS    int64
}

// PrefetchHashed hints the cache lines of h's first probe slot. Entries
// are larger than one cache line, so both the first and last byte of the
// slot are touched (interior pointers only — never past the entry).
// Advisory: dropping the hint changes nothing observable.
//
//im:hotpath
func (t *Table) PrefetchHashed(h uint64) {
	e := &t.entries[h&t.mask]
	prefetch.T0(unsafe.Pointer(e))
	prefetch.T0(unsafe.Pointer(&e.chance))
}

// AccumulateBatch applies ops in order with state transitions identical to
// len(ops) sequential AccumulateHashed calls: same outcomes, same stats,
// same final entries (TestAccumulateBatchMatchesScalar enforces this).
// outcomes[i] receives op i's result; the slice must be at least as long
// as ops. Per-op entry pointers are not surfaced — a later op in the batch
// may relocate them — so callers that need the live entry after each
// update (the engine does, for pass events) should instead issue
// PrefetchHashed themselves and call AccumulateHashed per op.
//
//im:hotpath
func (t *Table) AccumulateBatch(ops []Op, outcomes []Outcome) {
	outcomes = outcomes[:len(ops)]
	for base := 0; base < len(ops); base += prefetchWindow {
		end := min(base+prefetchWindow, len(ops))
		for i := base; i < end; i++ {
			t.PrefetchHashed(ops[i].Hash)
		}
		for i := base; i < end; i++ {
			op := &ops[i]
			outcomes[i], _ = t.AccumulateHashed(op.Hash, op.Key, op.Pkts, op.Bytes, op.TS)
		}
	}
}

// LookupBatch is the read-side twin: out[i], ok[i] receive the result of
// LookupHashed(hashes[i], keys[i], now). All four slices must be at least
// as long as hashes.
//
//im:hotpath
func (t *Table) LookupBatch(hashes []uint64, keys []packet.FlowKey, now int64, out []Entry, ok []bool) {
	keys = keys[:len(hashes)]
	out = out[:len(hashes)]
	ok = ok[:len(hashes)]
	for base := 0; base < len(hashes); base += prefetchWindow {
		end := min(base+prefetchWindow, len(hashes))
		for i := base; i < end; i++ {
			t.PrefetchHashed(hashes[i])
		}
		for i := base; i < end; i++ {
			out[i], ok[i] = t.LookupHashed(hashes[i], keys[i], now)
		}
	}
}
