package wsaf

import (
	"errors"
	"testing"
	"testing/quick"

	"instameasure/internal/packet"
)

func key(i int) packet.FlowKey {
	return packet.V4Key(uint32(i), uint32(i)*7+1, uint16(i%60000)+1, 80, packet.ProtoTCP)
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100, 1<<20 + 1} {
		if _, err := New(Config{Entries: n}); !errors.Is(err, ErrEntriesPow2) {
			t.Errorf("Entries=%d: err = %v, want ErrEntriesPow2", n, err)
		}
	}
	if _, err := New(Config{Entries: 1024}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestProbeLimitClamped(t *testing.T) {
	tab := MustNew(Config{Entries: 4, ProbeLimit: 100})
	if tab.probeLimit != 4 {
		t.Errorf("probe limit %d, want clamped to 4", tab.probeLimit)
	}
}

func TestAccumulateInsertAndLookup(t *testing.T) {
	tab := MustNew(Config{Entries: 256})
	k := key(1)
	outcome, _ := tab.Accumulate(k, 10, 5000, 100)
	if outcome != Inserted {
		t.Fatalf("first accumulate outcome = %v, want Inserted", outcome)
	}
	e, ok := tab.Lookup(k, 100)
	if !ok {
		t.Fatal("lookup after insert failed")
	}
	if e.Pkts != 10 || e.Bytes != 5000 || e.FirstSeen != 100 || e.LastUpdate != 100 {
		t.Errorf("entry = %+v", e)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestAccumulateUpdate(t *testing.T) {
	tab := MustNew(Config{Entries: 256})
	k := key(2)
	tab.Accumulate(k, 10, 1000, 100)
	outcome, _ := tab.Accumulate(k, 5, 500, 200)
	if outcome != Updated {
		t.Fatalf("second accumulate outcome = %v, want Updated", outcome)
	}
	e, _ := tab.Lookup(k, 200)
	if e.Pkts != 15 || e.Bytes != 1500 {
		t.Errorf("accumulated entry = %+v, want 15/1500", e)
	}
	if e.FirstSeen != 100 || e.LastUpdate != 200 {
		t.Errorf("timestamps = %d/%d, want 100/200", e.FirstSeen, e.LastUpdate)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1 after update", tab.Len())
	}
}

func TestHashedAPIMatchesKeyed(t *testing.T) {
	// AccumulateHashed/LookupHashed with the caller-computed hash must be
	// indistinguishable from the keyed wrappers: same outcomes, same table
	// state, same lookups.
	keyed := MustNew(Config{Entries: 256, Seed: 7})
	hashed := MustNew(Config{Entries: 256, Seed: 7})
	for i := 0; i < 400; i++ {
		k := key(i % 90) // revisit keys so Updated paths run too
		now := int64(i) * 10
		oK, _ := keyed.Accumulate(k, float64(i+1), float64(i)*100, now)
		oH, live := hashed.AccumulateHashed(k.Hash64(hashed.seed), k, float64(i+1), float64(i)*100, now)
		if oK != oH {
			t.Fatalf("packet %d: keyed outcome %v, hashed outcome %v", i, oK, oH)
		}
		if oH != Dropped && live == nil {
			t.Fatalf("packet %d: outcome %v returned nil live entry", i, oH)
		}
		if live != nil && live.Key != k {
			t.Fatalf("packet %d: live entry key %v, want %v", i, live.Key, k)
		}
	}
	for i := 0; i < 90; i++ {
		k := key(i)
		eK, okK := keyed.Lookup(k, 5000)
		eH, okH := hashed.LookupHashed(k.Hash64(hashed.seed), k, 5000)
		if okK != okH || eK != eH {
			t.Fatalf("key %d: keyed lookup (%+v,%v) != hashed (%+v,%v)", i, eK, okK, eH, okH)
		}
	}
}

func TestAccumulateHashedLiveEntryTotals(t *testing.T) {
	tab := MustNew(Config{Entries: 64})
	k := key(3)
	h := k.Hash64(tab.seed)
	if _, live := tab.AccumulateHashed(h, k, 4, 400, 10); live == nil || live.Pkts != 4 || live.Bytes != 400 {
		t.Fatalf("insert live entry = %+v, want 4/400", live)
	}
	_, live := tab.AccumulateHashed(h, k, 6, 600, 20)
	if live == nil || live.Pkts != 10 || live.Bytes != 1000 {
		t.Fatalf("update live entry = %+v, want accumulated 10/1000", live)
	}
	if live.FirstSeen != 10 || live.LastUpdate != 20 {
		t.Errorf("live entry timestamps = %d/%d, want 10/20", live.FirstSeen, live.LastUpdate)
	}
}

func TestAccumulateHashedEvictionReturnsNewEntry(t *testing.T) {
	// Tiny table, linear-fill until an eviction; the returned live entry
	// must describe the newly placed flow, and the keyed wrapper must still
	// surface a copy of the victim.
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4})
	for i := 0; i < 4; i++ {
		tab.Accumulate(key(i), 100, 100, 1)
	}
	var newKey packet.FlowKey
	for i := 4; ; i++ {
		newKey = key(i)
		outcome, live := tab.AccumulateHashed(newKey.Hash64(tab.seed), newKey, 1, 1, 2)
		if outcome == Evicted {
			if live == nil || live.Key != newKey || live.Pkts != 1 {
				t.Fatalf("evict live entry = %+v, want fresh entry for %v", live, newKey)
			}
			break
		}
		if outcome == Dropped {
			continue // every candidate slot recently referenced; try another key
		}
	}

	// Keyed wrapper: victim copy survives subsequent table mutation.
	tab2 := MustNew(Config{Entries: 4, ProbeLimit: 4})
	for i := 0; i < 4; i++ {
		tab2.Accumulate(key(i), float64(100+i), 100, 1)
	}
	for i := 4; ; i++ {
		outcome, victim := tab2.Accumulate(key(i), 1, 1, 2)
		if outcome == Evicted {
			if victim == nil || victim.Pkts < 100 {
				t.Fatalf("victim = %+v, want one of the original heavy entries", victim)
			}
			saved := *victim
			tab2.Accumulate(key(i), 9, 9, 3) // mutate table; copy must not alias
			if *victim != saved {
				t.Error("victim entry aliases live table state")
			}
			break
		}
	}
}

func TestLookupMissing(t *testing.T) {
	tab := MustNew(Config{Entries: 64})
	if _, ok := tab.Lookup(key(9), 0); ok {
		t.Error("lookup of absent key succeeded")
	}
}

func TestManyFlowsAllFindable(t *testing.T) {
	tab := MustNew(Config{Entries: 4096, ProbeLimit: 32})
	const n = 2000 // ~49% load
	for i := 0; i < n; i++ {
		tab.Accumulate(key(i), float64(i+1), float64(i+1)*100, int64(i))
	}
	missing := 0
	for i := 0; i < n; i++ {
		e, ok := tab.Lookup(key(i), int64(n))
		if !ok {
			missing++
			continue
		}
		if e.Pkts != float64(i+1) {
			t.Errorf("flow %d: Pkts = %v, want %d", i, e.Pkts, i+1)
		}
	}
	// A handful may have been evicted by clock pressure; nearly all
	// must survive at 50% load.
	if missing > n/100 {
		t.Errorf("%d of %d flows missing at 49%% load", missing, n)
	}
}

func TestTTLGarbageCollection(t *testing.T) {
	tab := MustNew(Config{Entries: 64, TTL: 1000})
	k := key(3)
	tab.Accumulate(k, 1, 100, 0)
	if _, ok := tab.Lookup(k, 500); !ok {
		t.Fatal("entry must be live before TTL")
	}
	if _, ok := tab.Lookup(k, 2000); ok {
		t.Error("entry must expire after TTL")
	}
	// Snapshot must skip expired entries when now is provided.
	if got := len(tab.Snapshot(2000)); got != 0 {
		t.Errorf("snapshot has %d entries after expiry, want 0", got)
	}
	if got := len(tab.Snapshot(0)); got != 1 {
		t.Errorf("snapshot(0) has %d entries, want 1 (TTL filter off)", got)
	}
}

func TestExpiredSlotReclaimed(t *testing.T) {
	tab := MustNew(Config{Entries: 64, TTL: 1000})
	a := key(4)
	tab.Accumulate(a, 1, 1, 0)
	// Find a key probing into the same first slot so reclaim is observable.
	target := int((a.Hash64(0)) & tab.mask)
	var b packet.FlowKey
	for i := 100; ; i++ {
		b = key(i)
		if int(b.Hash64(0)&tab.mask) == target {
			break
		}
	}
	outcome, _ := tab.Accumulate(b, 2, 2, 5000) // a is long expired
	if outcome != Reclaimed {
		t.Fatalf("outcome = %v, want Reclaimed", outcome)
	}
	if _, ok := tab.Lookup(b, 5000); !ok {
		t.Error("reclaiming flow must be findable")
	}
	if tab.Stats().Reclaims != 1 {
		t.Errorf("Reclaims = %d, want 1", tab.Stats().Reclaims)
	}
}

func TestSecondChanceEviction(t *testing.T) {
	// A 4-entry table with probe limit 4: every slot is in every probe
	// window, so a 5th flow forces the clock hand to evict.
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4})
	for i := 0; i < 4; i++ {
		tab.Accumulate(key(i), float64(10*(i+1)), 1, int64(i))
	}
	if tab.Len() != 4 {
		t.Fatalf("setup: Len = %d, want 4", tab.Len())
	}
	outcome, victim := tab.Accumulate(key(99), 1000, 1, 100)
	if outcome != Evicted {
		t.Fatalf("outcome = %v, want Evicted", outcome)
	}
	if victim == nil {
		t.Fatal("eviction must report the victim")
	}
	if _, ok := tab.Lookup(key(99), 100); !ok {
		t.Error("newly inserted flow missing after eviction")
	}
	if tab.Len() != 4 {
		t.Errorf("Len = %d after eviction, want 4", tab.Len())
	}
	if tab.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", tab.Stats().Evictions)
	}
}

func TestSecondChanceProtectsRecentlyUpdated(t *testing.T) {
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4})
	for i := 0; i < 4; i++ {
		tab.Accumulate(key(i), 10, 1, int64(i))
	}
	// First eviction clears every chance bit and evicts one entry; the
	// survivors have chance=false. Re-touch flow 0 to re-arm its bit.
	tab.Accumulate(key(90), 100, 1, 50)
	tab.Accumulate(key(0), 1, 1, 60)
	// Next eviction must spare flow 0 (chance set) and take an unarmed
	// entry instead.
	tab.Accumulate(key(91), 100, 1, 70)
	if _, ok := tab.Lookup(key(0), 70); !ok {
		t.Error("recently updated flow was evicted despite its second chance")
	}
}

func TestMicePreferredForEviction(t *testing.T) {
	// With all chance bits armed, the clock pass clears them and the
	// fallback evicts the minimum-packet entry.
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4})
	sizes := []float64{500, 3, 400, 200}
	for i, s := range sizes {
		tab.Accumulate(key(i), s, 1, int64(i))
	}
	_, victim := tab.Accumulate(key(50), 1000, 1, 10)
	if victim == nil {
		t.Fatal("expected an eviction")
	}
	if victim.Pkts != 3 {
		t.Errorf("evicted Pkts = %v, want the mouse (3)", victim.Pkts)
	}
}

func TestTriangularProbingCoversAllSlots(t *testing.T) {
	// Property underpinning the paper's h(k,i)=h+0.5i+0.5i² choice: over
	// a power-of-two table, the first m triangular offsets hit every slot.
	for _, m := range []int{4, 16, 64, 256, 1024} {
		seen := make(map[uint64]bool, m)
		for i := 0; i < m; i++ {
			seen[triangular(i)%uint64(m)] = true
		}
		if len(seen) != m {
			t.Errorf("m=%d: triangular probing reached %d slots", m, len(seen))
		}
	}
}

func TestSnapshotCopies(t *testing.T) {
	tab := MustNew(Config{Entries: 64})
	tab.Accumulate(key(1), 5, 50, 1)
	snap := tab.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	snap[0].Pkts = 999
	e, _ := tab.Lookup(key(1), 1)
	if e.Pkts != 5 {
		t.Error("mutating a snapshot leaked into the table")
	}
}

func TestTopK(t *testing.T) {
	tab := MustNew(Config{Entries: 256})
	for i := 0; i < 20; i++ {
		tab.Accumulate(key(i), float64(i), float64(100-i), int64(i))
	}
	topPkts := tab.TopK(3, 0, func(e *Entry) float64 { return e.Pkts })
	if len(topPkts) != 3 || topPkts[0].Pkts != 19 || topPkts[1].Pkts != 18 {
		t.Errorf("TopK by packets wrong: %v", topPkts)
	}
	topBytes := tab.TopK(2, 0, func(e *Entry) float64 { return e.Bytes })
	if len(topBytes) != 2 || topBytes[0].Bytes != 100 {
		t.Errorf("TopK by bytes wrong: %v", topBytes)
	}
	all := tab.TopK(100, 0, func(e *Entry) float64 { return e.Pkts })
	if len(all) != 20 {
		t.Errorf("TopK(100) returned %d entries, want all 20", len(all))
	}
}

func TestLoadFactorAndMemory(t *testing.T) {
	tab := MustNew(Config{Entries: 128})
	if tab.LoadFactor() != 0 {
		t.Error("fresh load factor must be 0")
	}
	for i := 0; i < 64; i++ {
		tab.Accumulate(key(i), 1, 1, 0)
	}
	if lf := tab.LoadFactor(); lf < 0.45 || lf > 0.5 {
		t.Errorf("load factor = %v, want ~0.5", lf)
	}
	if tab.MemoryBytes() != 128*EntryBytes {
		t.Errorf("MemoryBytes = %d, want %d", tab.MemoryBytes(), 128*EntryBytes)
	}
	if tab.Capacity() != 128 {
		t.Errorf("Capacity = %d, want 128", tab.Capacity())
	}
}

func TestReset(t *testing.T) {
	tab := MustNew(Config{Entries: 64})
	tab.Accumulate(key(1), 1, 1, 0)
	tab.Reset()
	if tab.Len() != 0 || tab.Stats() != (Stats{}) {
		t.Error("Reset must clear entries and stats")
	}
	if _, ok := tab.Lookup(key(1), 0); ok {
		t.Error("entry survived Reset")
	}
}

func TestAccumulatePropertyTotalsPreserved(t *testing.T) {
	// Property: with no eviction pressure, the sum over the table equals
	// the sum of accumulated values.
	f := func(updates []uint8) bool {
		tab := MustNew(Config{Entries: 1024, ProbeLimit: 64})
		var want float64
		for i, u := range updates {
			v := float64(u) + 1
			tab.Accumulate(key(i%50), v, v, int64(i))
			want += v
		}
		var got float64
		for _, e := range tab.Snapshot(0) {
			got += e.Pkts
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHighLoadBehavior(t *testing.T) {
	// Push 3× capacity through a small table: the table must stay at
	// most full, keep answering lookups, and prefer keeping big flows.
	tab := MustNew(Config{Entries: 256, ProbeLimit: 16})
	big := key(7)
	for i := 0; i < 3*256; i++ {
		tab.Accumulate(key(1000+i), 1, 1, int64(i))
		tab.Accumulate(big, 50, 50, int64(i)) // keep the elephant hot
	}
	if tab.Len() > 256 {
		t.Errorf("Len %d exceeds capacity", tab.Len())
	}
	if _, ok := tab.Lookup(big, 99999); !ok {
		t.Error("hot elephant flow was evicted under mice pressure")
	}
	st := tab.Stats()
	if st.Evictions == 0 && st.Drops == 0 {
		t.Error("expected eviction activity at 3× capacity")
	}
}

func TestLinearProbingWorks(t *testing.T) {
	tab := MustNew(Config{Entries: 1024, Probing: ProbeLinear, ProbeLimit: 32})
	const n = 500
	for i := 0; i < n; i++ {
		tab.Accumulate(key(i), float64(i+1), 1, int64(i))
	}
	missing := 0
	for i := 0; i < n; i++ {
		if _, ok := tab.Lookup(key(i), int64(n)); !ok {
			missing++
		}
	}
	if missing > n/50 {
		t.Errorf("%d of %d flows missing under linear probing at 49%% load", missing, n)
	}
}

func TestEvictFirstDiscardsRegardlessOfSize(t *testing.T) {
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4, Eviction: EvictFirst})
	for i := 0; i < 4; i++ {
		tab.Accumulate(key(i), 1000, 1, int64(i)) // all elephants
	}
	outcome, victim := tab.Accumulate(key(50), 1, 1, 10)
	if outcome != Evicted || victim == nil {
		t.Fatalf("outcome = %v, want Evicted", outcome)
	}
	// EvictFirst takes the first probed slot even though it held an
	// elephant — the failure mode second-chance avoids.
	if victim.Pkts != 1000 {
		t.Errorf("victim Pkts = %v, want 1000", victim.Pkts)
	}
}

func TestQuadraticBeatsLinearClusteringAtHighLoad(t *testing.T) {
	// At ~87% load with sequential-ish hashes, quadratic probing should
	// place at least as many distinct flows as linear within the same
	// probe limit. (Statistical property; uses a generous margin.)
	run := func(p Probing) int {
		tab := MustNew(Config{Entries: 512, ProbeLimit: 8, Probing: p})
		for i := 0; i < 448; i++ {
			tab.Accumulate(key(i), 1, 1, int64(i))
		}
		found := 0
		for i := 0; i < 448; i++ {
			if _, ok := tab.Lookup(key(i), 448); ok {
				found++
			}
		}
		return found
	}
	q, l := run(ProbeQuadratic), run(ProbeLinear)
	if q < l-20 {
		t.Errorf("quadratic retained %d flows, linear %d — clustering inverted", q, l)
	}
}

// TestModelEquivalence is a model-based property test: with a roomy table
// (no eviction pressure), the WSAF must behave exactly like a reference
// map for any accumulate/lookup interleaving.
func TestModelEquivalence(t *testing.T) {
	type op struct {
		Flow  uint8
		Pkts  uint8
		Bytes uint8
		TS    uint8
	}
	f := func(ops []op) bool {
		tab := MustNew(Config{Entries: 4096, ProbeLimit: 64})
		model := map[packet.FlowKey][2]float64{}
		for _, o := range ops {
			k := key(int(o.Flow))
			pk, by := float64(o.Pkts)+1, float64(o.Bytes)+1
			tab.Accumulate(k, pk, by, int64(o.TS))
			cur := model[k]
			model[k] = [2]float64{cur[0] + pk, cur[1] + by}
		}
		if tab.Len() != len(model) {
			return false
		}
		for k, want := range model {
			e, ok := tab.Lookup(k, 0)
			if !ok || e.Pkts != want[0] || e.Bytes != want[1] {
				return false
			}
		}
		// Snapshot must agree with the model too.
		for _, e := range tab.Snapshot(0) {
			want, ok := model[e.Key]
			if !ok || e.Pkts != want[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestExpiredSelfEntryRestarts is the regression test for the TTL
// resurrection bug: a packet arriving for a flow whose own entry expired
// must start a fresh record (Reclaimed), not resume the stale counters —
// Lookup and Snapshot already declared that entry dead.
func TestExpiredSelfEntryRestarts(t *testing.T) {
	tab := MustNew(Config{Entries: 64, TTL: 1000})
	k := key(11)
	tab.Accumulate(k, 40, 4000, 0)
	if _, ok := tab.Lookup(k, 5000); ok {
		t.Fatal("entry must be expired at now=5000")
	}

	outcome, _ := tab.Accumulate(k, 3, 300, 5000)
	if outcome != Reclaimed {
		t.Fatalf("accumulate into own expired entry: outcome = %v, want Reclaimed", outcome)
	}
	e, ok := tab.Lookup(k, 5000)
	if !ok {
		t.Fatal("restarted flow must be findable")
	}
	if e.Pkts != 3 || e.Bytes != 300 {
		t.Errorf("restarted entry carries stale counters: Pkts=%v Bytes=%v, want 3/300", e.Pkts, e.Bytes)
	}
	if e.FirstSeen != 5000 {
		t.Errorf("restarted FirstSeen = %d, want 5000", e.FirstSeen)
	}
	if s := tab.Stats(); s.Reclaims != 1 || s.Updates != 0 {
		t.Errorf("stats = %+v, want 1 reclaim and 0 updates", s)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1 (restart must not double-count occupancy)", tab.Len())
	}
}

// TestExpiredEntriesNeverLeak drives a TTL table with two generations of
// flows and checks that no API — Lookup, LookupHashed, Snapshot, TopK —
// ever reports an entry whose last update is older than the TTL.
func TestExpiredEntriesNeverLeak(t *testing.T) {
	const ttl = 1000
	tab := MustNew(Config{Entries: 256, TTL: ttl})
	for i := 0; i < 100; i++ {
		tab.Accumulate(key(i), 10, 100, int64(i))
	}
	// Second generation, far past the first's TTL.
	now := int64(100_000)
	for i := 100; i < 130; i++ {
		tab.Accumulate(key(i), 20, 200, now)
	}

	for i := 0; i < 100; i++ {
		if _, ok := tab.Lookup(key(i), now); ok {
			t.Fatalf("Lookup leaked expired flow %d", i)
		}
		k := key(i)
		if _, ok := tab.LookupHashed(k.Hash64(0), k, now); ok {
			t.Fatalf("LookupHashed leaked expired flow %d", i)
		}
	}
	for _, e := range tab.Snapshot(now) {
		if now-e.LastUpdate > ttl {
			t.Fatalf("Snapshot leaked expired entry %+v at now=%d", e, now)
		}
	}
	for _, e := range tab.TopK(1000, now, func(en *Entry) float64 { return en.Pkts }) {
		if now-e.LastUpdate > ttl {
			t.Fatalf("TopK leaked expired entry %+v at now=%d", e, now)
		}
	}
}

// TestEvictedEntrySurvivesLaterCalls enforces Accumulate's copy contract:
// the Evicted result must stay intact across arbitrarily many later calls,
// including further evictions that overwrite the victim scratch.
func TestEvictedEntrySurvivesLaterCalls(t *testing.T) {
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4})
	for i := 0; i < 4; i++ {
		tab.Accumulate(key(i), float64(1000+i), 10, 1)
	}
	var first *Entry
	var firstSaved Entry
	for i := 4; first == nil; i++ {
		if o, v := tab.Accumulate(key(i), 1, 1, 2); o == Evicted {
			first, firstSaved = v, *v
		}
	}
	// Force more evictions; each overwrites the victim scratch.
	evictions := 0
	for i := 1000; evictions < 3; i++ {
		if o, _ := tab.Accumulate(key(i), 1, 1, int64(3+i)); o == Evicted {
			evictions++
		}
	}
	if *first != firstSaved {
		t.Errorf("held Evicted result changed after later evictions:\n got %+v\nwant %+v", *first, firstSaved)
	}
}

// TestVictimAccessor checks that Victim surfaces the displaced entry for
// AccumulateHashed callers, as a copy.
func TestVictimAccessor(t *testing.T) {
	tab := MustNew(Config{Entries: 4, ProbeLimit: 4})
	for i := 0; i < 4; i++ {
		tab.Accumulate(key(i), float64(500+i), 10, 1)
	}
	for i := 4; ; i++ {
		k := key(i)
		o, _ := tab.AccumulateHashed(k.Hash64(tab.seed), k, 1, 1, 2)
		if o != Evicted {
			continue
		}
		v := tab.Victim()
		if v.Pkts < 500 {
			t.Fatalf("Victim() = %+v, want one of the original heavy entries", v)
		}
		saved := v
		tab.Accumulate(key(i+12345), 7, 7, 3)
		if v != saved {
			t.Error("Victim() copy aliases table state")
		}
		break
	}
}

// TestStatsConservation checks the table's conservation laws under random
// load: every Accumulate lands in exactly one outcome bucket, and live
// occupancy equals fresh-slot inserts (reclaims and evictions pair one
// death with one birth).
func TestStatsConservation(t *testing.T) {
	tab := MustNew(Config{Entries: 64, ProbeLimit: 8, TTL: 5000})
	var calls uint64
	for i := 0; i < 20_000; i++ {
		tab.Accumulate(key(i%500), 1, 64, int64(i)*17)
		calls++
	}
	s := tab.Stats()
	if got := s.Updates + s.Inserts + s.Reclaims + s.Evictions + s.Drops; got != calls {
		t.Errorf("outcome sum %d != %d calls", got, calls)
	}
	if uint64(tab.Len()) != s.Inserts {
		t.Errorf("occupancy %d != inserts %d (reclaim/evict must be occupancy-neutral)", tab.Len(), s.Inserts)
	}
}
