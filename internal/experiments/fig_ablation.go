package experiments

import (
	"fmt"
	"time"

	"instameasure/internal/baseline/iblt"
	"instameasure/internal/core"
	"instameasure/internal/detect"
	"instameasure/internal/export"
	"instameasure/internal/flowreg"
	"instameasure/internal/memmodel"
	"instameasure/internal/packet"
	"instameasure/internal/pipeline"
	"instameasure/internal/rcc"
	"instameasure/internal/stats"
	"instameasure/internal/trace"
	"instameasure/internal/wsaf"
)

// AblationEviction compares the paper's probe-limit second-chance
// replacement against naive evict-first under heavy table pressure: the
// clock policy must keep elephants resident while mice churn.
func AblationEviction(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "Abl.evict",
		Title:  "WSAF replacement policy: second-chance vs evict-first (small table)",
		Header: []string{"policy", "top-100 recall", "evictions", "live flows"},
	}
	top100 := tr.TopTruth(100, func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) })

	for _, pol := range []struct {
		name string
		ev   wsaf.Eviction
	}{
		{"second-chance", wsaf.EvictSecondChance},
		{"evict-first", wsaf.EvictFirst},
	} {
		eng, err := core.New(core.Config{
			SketchMemoryBytes: 32 << 10,
			// Deliberately undersized WSAF (~pressure) to force
			// replacement decisions.
			WSAFEntries: 1 << 10,
			ProbeLimit:  8,
			Seed:        s.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Rebuild the engine's table with the policy under test.
		tab, err := wsaf.New(wsaf.Config{
			Entries:    1 << 10,
			ProbeLimit: 8,
			Eviction:   pol.ev,
			Seed:       s.Seed,
		})
		if err != nil {
			return nil, err
		}
		recall, evictions, live, err := runWithTable(tr, eng, tab, top100, s.Seed)
		if err != nil {
			return nil, err
		}
		rep.AddRow(pol.name, pct2(recall), fmt.Sprintf("%d", evictions), fmt.Sprintf("%d", live))
	}
	rep.AddNote("WSAF shrunk to 2^10 entries so replacement pressure is real")
	rep.AddNote("shape target: second-chance retains more of the true top-100 than evict-first")
	return rep, nil
}

// runWithTable replays tr through the regulator feeding the given table
// directly, then scores top-100 recall.
func runWithTable(
	tr *trace.Trace,
	eng *core.Engine,
	tab *wsaf.Table,
	truthTop []packet.FlowKey,
	seed uint64,
) (recall float64, evictions uint64, live int, err error) {
	reg := eng.Regulator()
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if em, ok := reg.Process(p.Key.Hash64(seed), int(p.Len)); ok {
			tab.Accumulate(p.Key, em.EstPkts, em.EstBytes, p.TS)
		}
	}
	got := detect.TopKKeys(tab.Snapshot(0), len(truthTop),
		func(e *wsaf.Entry) float64 { return e.Pkts })
	return stats.Recall(got, truthTop), tab.Stats().Evictions, tab.Len(), nil
}

// AblationProbing compares quadratic and linear probing at high load:
// probing cost and flow retention.
func AblationProbing(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "Abl.probe",
		Title:  "WSAF probing: quadratic (paper) vs linear at high load",
		Header: []string{"probing", "probe steps/op", "live flows", "evictions"},
	}
	for _, pol := range []struct {
		name string
		p    wsaf.Probing
	}{
		{"quadratic", wsaf.ProbeQuadratic},
		{"linear", wsaf.ProbeLinear},
	} {
		eng, err := core.New(core.Config{SketchMemoryBytes: 32 << 10, WSAFEntries: 1 << 10, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		tab, err := wsaf.New(wsaf.Config{
			Entries:    1 << 10,
			ProbeLimit: 16,
			Probing:    pol.p,
			Seed:       s.Seed,
		})
		if err != nil {
			return nil, err
		}
		reg := eng.Regulator()
		var ops uint64
		for i := range tr.Packets {
			p := &tr.Packets[i]
			if em, ok := reg.Process(p.Key.Hash64(s.Seed), int(p.Len)); ok {
				tab.Accumulate(p.Key, em.EstPkts, em.EstBytes, p.TS)
				ops++
			}
		}
		st := tab.Stats()
		rep.AddRow(
			pol.name,
			fmt.Sprintf("%.2f", float64(st.ProbeSteps)/float64(ops)),
			fmt.Sprintf("%d", tab.Len()),
			fmt.Sprintf("%d", st.Evictions),
		)
	}
	rep.AddNote("quadratic probing's triangular offsets break primary clustering at high load factors")
	return rep, nil
}

// IBLTComparison contrasts the WSAF with FlowRadar's IBLT (related work,
// Section VI): the IBLT decodes exactly below its peeling threshold but
// collapses under overload, while the WSAF degrades gracefully by evicting
// mice.
func IBLTComparison(s Scale) (*Report, error) {
	rep := &Report{
		ID:    "Cmp.IBLT",
		Title: "WSAF vs FlowRadar-style IBLT under increasing flow load",
		Header: []string{"flows/capacity", "IBLT decoded", "IBLT complete",
			"WSAF live", "WSAF top-100 recall"},
	}

	cells := 4096
	capacity := int(float64(cells) / 1.3) // IBLT peeling threshold for k=3

	for _, loadFrac := range []float64{0.5, 0.9, 1.2, 2.0} {
		nFlows := int(float64(capacity) * loadFrac)
		tr, err := trace.GenerateZipf(trace.ZipfConfig{
			Flows:        nFlows,
			TotalPackets: nFlows * 12,
			Seed:         s.Seed + uint64(nFlows),
		})
		if err != nil {
			return nil, err
		}

		tab := iblt.MustNew(iblt.Config{Cells: cells, Seed: s.Seed})
		w, err := wsaf.New(wsaf.Config{Entries: 4096, ProbeLimit: 16, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		for i := range tr.Packets {
			p := &tr.Packets[i]
			tab.Add(p.Key, 1, float64(p.Len))
			// WSAF receives regulated traffic in the full system; here
			// both receive per-packet updates for a like-for-like load
			// comparison of the table structures themselves.
			w.Accumulate(p.Key, 1, float64(p.Len), p.TS)
		}

		flows, complete := tab.Clone().Decode()
		top100 := tr.TopTruth(100, func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) })
		got := detect.TopKKeys(w.Snapshot(0), 100, func(e *wsaf.Entry) float64 { return e.Pkts })
		recall := stats.Recall(got, top100)

		rep.AddRow(
			fmt.Sprintf("%.1fx", loadFrac),
			fmt.Sprintf("%d/%d", len(flows), tr.Flows()),
			fmt.Sprintf("%v", complete),
			fmt.Sprintf("%d", w.Len()),
			pct2(recall),
		)
	}
	rep.AddNote("IBLT: %d cells, k=3, peeling capacity ≈ %d flows; WSAF: 4096 entries", cells, capacity)
	rep.AddNote("shape target: IBLT decode collapses past 1.0x; WSAF keeps elephants (recall high) at any load")
	return rep, nil
}

// DelegationLoopback measures the real delegation path: WSAF snapshots
// exported over TCP loopback to a collector every epoch, with detection
// happening at the collector — the architecture whose latency the paper's
// saturation-based decoding beats.
func DelegationLoopback(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}

	received := make(chan int64, 64)
	coll, err := export.NewCollector("127.0.0.1:0", func(b export.Batch) {
		received <- b.Epoch
	})
	if err != nil {
		return nil, err
	}
	defer coll.Close()

	exp, err := export.Dial(coll.Addr())
	if err != nil {
		return nil, err
	}
	defer exp.Close()

	eng, err := core.New(core.Config{SketchMemoryBytes: 32 << 10, WSAFEntries: 1 << 18, Seed: s.Seed})
	if err != nil {
		return nil, err
	}

	// Export an epoch every eighth of the trace and time the round trip.
	epochPkts := len(tr.Packets) / 8
	var rtts []float64
	epoch := int64(0)
	for i := range tr.Packets {
		eng.Process(tr.Packets[i])
		if (i+1)%epochPkts == 0 {
			epoch++
			snap := eng.Snapshot()
			records := make([]export.Record, len(snap))
			for j, e := range snap {
				records[j] = export.FromEntry(e)
			}
			start := time.Now()
			if err := exp.Export(export.Batch{Epoch: epoch, Records: records}); err != nil {
				return nil, err
			}
			// Wait for the collector to merge this epoch.
			for got := range received {
				if got == epoch {
					break
				}
			}
			rtts = append(rtts, float64(time.Since(start).Microseconds())/1e3)
		}
	}

	batches, records := coll.Stats()
	rep := &Report{
		ID:     "Ext.deleg",
		Title:  "Delegation over TCP loopback: export+merge round trip per epoch",
		Header: []string{"epochs", "records", "mean RTT", "p99 RTT"},
	}
	rep.AddRow(
		fmt.Sprintf("%d", batches),
		fmt.Sprintf("%d", records),
		fmt.Sprintf("%.3f ms", stats.Mean(rtts)),
		fmt.Sprintf("%.3f ms", stats.Percentile(rtts, 99)),
	)
	rep.AddNote("loopback only — a real deployment adds network RTT and decode queueing on top")
	rep.AddNote("contrast with Fig. 9b: saturation-based detection needs no export round trip at all")
	return rep, nil
}

// AblationShardingQuality compares measurement quality under the paper's
// popcount sharding (flow affinity preserved) vs round robin (each flow
// split across all workers, defeating per-worker sketches).
func AblationShardingQuality(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	top100 := tr.TopTruth(100, func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) })

	rep := &Report{
		ID:     "Abl.shard",
		Title:  "Worker sharding: popcount (flow affinity) vs round robin",
		Header: []string{"policy", "top-100 recall", "mean top-100 err"},
	}
	for _, pol := range []struct {
		name  string
		shard pipeline.ShardFunc
	}{
		{"popcount", pipeline.PopcountShard},
		{"round-robin", pipeline.RoundRobinShard()},
	} {
		sys, err := pipeline.New(pipeline.Config{
			Workers: 4,
			Shard:   pol.shard,
			Engine: core.Config{
				SketchMemoryBytes: 32 << 10,
				WSAFEntries:       1 << 16,
				Seed:              s.Seed,
			},
		})
		if err != nil {
			return nil, err
		}
		if _, err := sys.Run(tr.Source()); err != nil {
			return nil, err
		}

		// Merge per-worker entries per flow (round robin splits flows).
		merged := map[packet.FlowKey]float64{}
		for _, e := range sys.MergedSnapshot() {
			merged[e.Key] += e.Pkts
		}
		keys := make([]packet.FlowKey, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		got := topKeysByValue(keys, merged, 100)
		recall := stats.Recall(got, top100)

		var est, truth []float64
		for _, k := range top100 {
			est = append(est, merged[k])
			truth = append(truth, float64(tr.Truth(k).Pkts))
		}
		rep.AddRow(pol.name, pct2(recall), pct2(stats.MeanRelErr(est, truth)))
	}
	rep.AddNote("round robin splits each flow across 4 sketches: per-worker counts stay below saturation, losing flows and accuracy")
	return rep, nil
}

func topKeysByValue(keys []packet.FlowKey, vals map[packet.FlowKey]float64, k int) []packet.FlowKey {
	sorted := make([]packet.FlowKey, len(keys))
	copy(sorted, keys)
	// Simple selection sort for the top k — key counts are small here.
	for i := 0; i < k && i < len(sorted); i++ {
		maxJ := i
		for j := i + 1; j < len(sorted); j++ {
			if vals[sorted[j]] > vals[sorted[maxJ]] {
				maxJ = j
			}
		}
		sorted[i], sorted[maxJ] = sorted[maxJ], sorted[i]
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// LayersSweep exercises the knob Section V.B points at for TCAM-backed
// WSAFs: "FlowRegulator can be configured to have enough margin by
// adjusting the vector size or even the number of layers". It sweeps the
// chain depth and checks each regulation rate against the SRAM, DRAM, and
// TCAM margins, alongside the accuracy cost.
func LayersSweep(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	model := memmodel.Default()
	dramMargin := model.SpeedMargin(memmodel.TierSRAM, memmodel.TierDRAM)
	tcamMargin := model.SpeedMargin(memmodel.TierTCAM, memmodel.TierDRAM)

	rep := &Report{
		ID:     "Abl.layers",
		Title:  "FlowRegulator chain depth: regulation rate vs memory-tier margins",
		Header: []string{"layers", "memory", "ips/pps", "fits DRAM", "fits TCAM-grade", "5000+ pkt err"},
	}
	for _, layers := range []int{2, 3, 4} {
		reg, err := flowreg.New(flowreg.Config{
			Layer:  rcc.Config{MemoryBytes: 32 << 10, VectorBits: 8, Seed: s.Seed},
			Layers: layers,
		})
		if err != nil {
			return nil, err
		}
		est := make(map[packet.FlowKey]float64)
		for i := range tr.Packets {
			p := &tr.Packets[i]
			if em, ok := reg.Process(p.Key.Hash64(s.Seed), int(p.Len)); ok {
				est[p.Key] += em.EstPkts
			}
		}
		var sumErr float64
		var n int
		tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
			if ft.Pkts < 5000 {
				return
			}
			e := est[k] + reg.EstimateResidual(k.Hash64(s.Seed))
			sumErr += stats.RelErr(e, float64(ft.Pkts))
			n++
		})
		errCell := "-"
		if n > 0 {
			errCell = pct2(sumErr / float64(n))
		}
		rate := reg.RegulationRate()
		rep.AddRow(
			fmt.Sprintf("%d", layers),
			fmt.Sprintf("%dKB", reg.MemoryBytes()>>10),
			pct(rate),
			fmt.Sprintf("%v", rate <= dramMargin),
			fmt.Sprintf("%v", rate <= tcamMargin),
			errCell,
		)
	}
	rep.AddNote("margins: DRAM %s, TCAM-grade %s (TCAM access vs DRAM access)", pct(dramMargin), pct(tcamMargin))
	rep.AddNote("deeper chains regulate multiplicatively harder at the cost of estimate variance")
	return rep, nil
}
