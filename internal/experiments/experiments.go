// Package experiments contains one runner per figure/table of the paper's
// evaluation (Section V). Each runner builds its workload, sweeps the
// parameter the figure varies, and returns a Report whose rows mirror the
// series the paper plots. cmd/instabench prints these reports;
// bench_test.go wraps them in testing.B benchmarks.
//
// Scale-down: the paper's CAIDA workload is 3.7 B packets / 78 M flows and
// its campus workload 9.1 B packets over 113 hours. The default Scale here
// reproduces the same distributions at millions of packets so every figure
// regenerates in seconds; each report records the scale used so shape
// comparisons stay honest.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"instameasure/internal/trace"
)

// Scale sets workload sizes for the experiment runners.
type Scale struct {
	// Flows and Packets size the CAIDA-like trace.
	Flows   int
	Packets int
	// DiurnalHours and DiurnalPackets size the campus-like trace.
	DiurnalHours   float64
	DiurnalPackets int
	// Seed drives all generators.
	Seed uint64
}

// Predefined scales.
var (
	// ScaleSmall finishes each experiment in well under a second; used by
	// unit tests and -short benchmarks.
	ScaleSmall = Scale{
		Flows: 20_000, Packets: 400_000,
		DiurnalHours: 24, DiurnalPackets: 300_000,
		Seed: 2019,
	}
	// ScaleDefault is the instabench default: big enough for stable
	// percentages, small enough for an interactive run.
	ScaleDefault = Scale{
		Flows: 100_000, Packets: 2_000_000,
		DiurnalHours: 113, DiurnalPackets: 2_000_000,
		Seed: 2019,
	}
	// ScaleLarge pushes toward the paper's flow/packet ratio for final
	// reported numbers.
	ScaleLarge = Scale{
		Flows: 400_000, Packets: 8_000_000,
		DiurnalHours: 113, DiurnalPackets: 8_000_000,
		Seed: 2019,
	}
)

// Report is one experiment's regenerated figure/table.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics carries machine-readable headline numbers alongside the
	// formatted rows; the benchmark harness forwards them into the
	// archived benchmark JSON via b.ReportMetric.
	Metrics map[string]float64
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cols ...string) {
	r.Rows = append(r.Rows, cols)
}

// SetMetric records one headline number under a bench-metric unit name
// (e.g. "mpps", "scaling_eff").
func (r *Report) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(r.Header)
	printRow(dashes(widths))
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, n := range widths {
		out[i] = strings.Repeat("-", n)
	}
	return out
}

// caidaTrace builds (and memoizes per Scale value) the CAIDA-like workload.
func caidaTrace(s Scale) (*trace.Trace, error) {
	key := fmt.Sprintf("caida-%d-%d-%d", s.Flows, s.Packets, s.Seed)
	if tr, ok := traceCache[key]; ok {
		return tr, nil
	}
	tr, err := trace.GenerateZipf(trace.ZipfConfig{
		Flows:        s.Flows,
		TotalPackets: s.Packets,
		Seed:         s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("caida-like trace: %w", err)
	}
	traceCache[key] = tr
	return tr, nil
}

// campusTrace builds (and memoizes) the campus-like diurnal workload.
func campusTrace(s Scale) (*trace.Trace, error) {
	key := fmt.Sprintf("campus-%v-%d-%d", s.DiurnalHours, s.DiurnalPackets, s.Seed)
	if tr, ok := traceCache[key]; ok {
		return tr, nil
	}
	tr, err := trace.GenerateDiurnal(trace.DiurnalConfig{
		Hours:        s.DiurnalHours,
		TotalPackets: s.DiurnalPackets,
		Seed:         s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("campus-like trace: %w", err)
	}
	traceCache[key] = tr
	return tr, nil
}

// traceCache memoizes generated traces across runners within one process —
// instabench runs all figures in sequence and most share their workload.
var traceCache = map[string]*trace.Trace{}

func pct(x float64) string  { return fmt.Sprintf("%.3f%%", x*100) }
func pct2(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// All runs every experiment at the given scale, in figure order.
func All(s Scale) ([]*Report, error) {
	runners := []struct {
		name string
		fn   func(Scale) (*Report, error)
	}{
		{"fig1", Fig1RCCSaturation},
		{"fig6", Fig6Distributions},
		{"fig7", Fig7Relaxation},
		{"fig8a", Fig8aRetention},
		{"fig8b", Fig8bSaturationFrequency},
		{"fig8c", Fig8cAccuracy},
		{"fig9a", Fig9aCoreScaling},
		{"fig9b", Fig9bDetectionLatency},
		{"fig10", Fig10PacketAccuracy},
		{"fig11", Fig11ByteAccuracy},
		{"fig12", Fig12Monitoring},
		{"fig13", Fig13WildAccuracy},
		{"fig14", Fig14HeavyHitterRates},
		{"csm", CSMComparison},
		{"iblt", IBLTComparison},
		{"deleg", DelegationLoopback},
		{"evict", AblationEviction},
		{"probe", AblationProbing},
		{"shard", AblationShardingQuality},
		{"apps", AppsDetection},
		{"onset", AnomalyOnset},
		{"layers", LayersSweep},
		{"hotcache", HotCacheAccuracy},
		{"oracle", OracleDifferential},
		{"fleet", FleetAggregation},
	}
	out := make([]*Report, 0, len(runners))
	for _, r := range runners {
		rep, err := r.fn(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// ByID runs a single experiment by its figure id (e.g. "fig8a", "csm").
func ByID(id string, s Scale) (*Report, error) {
	switch strings.ToLower(id) {
	case "fig1", "1":
		return Fig1RCCSaturation(s)
	case "fig6", "6":
		return Fig6Distributions(s)
	case "fig7", "7":
		return Fig7Relaxation(s)
	case "fig8a", "8a":
		return Fig8aRetention(s)
	case "fig8b", "8b":
		return Fig8bSaturationFrequency(s)
	case "fig8c", "8c":
		return Fig8cAccuracy(s)
	case "fig9a", "9a":
		return Fig9aCoreScaling(s)
	case "fig9b", "9b":
		return Fig9bDetectionLatency(s)
	case "fig10", "10":
		return Fig10PacketAccuracy(s)
	case "fig11", "11":
		return Fig11ByteAccuracy(s)
	case "fig12", "12":
		return Fig12Monitoring(s)
	case "fig13", "13":
		return Fig13WildAccuracy(s)
	case "fig14", "14":
		return Fig14HeavyHitterRates(s)
	case "csm":
		return CSMComparison(s)
	case "iblt":
		return IBLTComparison(s)
	case "deleg":
		return DelegationLoopback(s)
	case "evict":
		return AblationEviction(s)
	case "probe":
		return AblationProbing(s)
	case "shard":
		return AblationShardingQuality(s)
	case "apps":
		return AppsDetection(s)
	case "onset":
		return AnomalyOnset(s)
	case "layers":
		return LayersSweep(s)
	case "hotcache":
		return HotCacheAccuracy(s)
	case "oracle":
		return OracleDifferential(s)
	case "fleet":
		return FleetAggregation(s)
	default:
		return nil, fmt.Errorf("experiments: unknown figure id %q", id)
	}
}
