package experiments

import (
	"fmt"
	"math"

	"instameasure/internal/core"
	"instameasure/internal/detect"
	"instameasure/internal/packet"
	"instameasure/internal/pipeline"
	"instameasure/internal/stats"
	"instameasure/internal/trace"
)

// Fig12Monitoring reproduces Fig. 12: the 113-hour campus monitoring run —
// traffic volume over time, sustained regulation, and worker queue
// occupancy staying flat (the paper's single Atom core never exceeded 40%
// CPU and its queue never grew).
func Fig12Monitoring(s Scale) (*Report, error) {
	tr, err := campusTrace(s)
	if err != nil {
		return nil, err
	}

	engCfg := core.Config{
		SketchMemoryBytes: 32 << 10,
		WSAFEntries:       1 << 20,
		Seed:              s.Seed,
	}

	// Calibration pass: measure the single worker's full-speed capacity.
	calib, err := pipeline.New(pipeline.Config{Workers: 1, Engine: engCfg})
	if err != nil {
		return nil, err
	}
	calibRep, err := calib.Run(tr.Source())
	if err != nil {
		return nil, err
	}
	capacityPPS := calibRep.MPPS() * 1e6

	// Monitored pass: offer traffic at 40% of capacity, as the deployment
	// ran with headroom (the paper's core never exceeded 40% CPU).
	sys, err := pipeline.New(pipeline.Config{
		Workers:     1,
		SampleEvery: 1000,
		Engine:      engCfg,
	})
	if err != nil {
		return nil, err
	}
	runRep, err := sys.Run(trace.NewPacedSource(tr.Source(), 0.4*capacityPPS))
	if err != nil {
		return nil, err
	}

	// Bucket traffic by simulated time (12 buckets across the window).
	start := tr.Packets[0].TS
	width := tr.Duration()/12 + 1
	pktSeries := stats.NewTimeSeries(start, width)
	byteSeries := stats.NewTimeSeries(start, width)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		pktSeries.Add(p.TS, 1)
		byteSeries.Add(p.TS, float64(p.Len))
	}

	rep := &Report{
		ID:     "Fig.12",
		Title:  "Monitoring in the wild: traffic volume and system load over the window",
		Header: []string{"window", "sim hours", "packets", "GB", "share of peak"},
	}
	var peak float64
	for i := 0; i < pktSeries.Len(); i++ {
		if v := pktSeries.Sum(i); v > peak {
			peak = v
		}
	}
	hoursPerBucket := float64(width) / 3.6e12
	for i := 0; i < pktSeries.Len(); i++ {
		rep.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.1f-%.1f", float64(i)*hoursPerBucket, float64(i+1)*hoursPerBucket),
			fmt.Sprintf("%.0f", pktSeries.Sum(i)),
			fmt.Sprintf("%.3f", byteSeries.Sum(i)/1e9),
			pct2(pktSeries.Sum(i)/peak),
		)
	}

	pkts, emissions := sys.TotalRegulation()
	meanQ, p99Q := queueStats(runRep.QueueSamples)
	eng := sys.Engines()[0]
	util := runRep.Utilization()[0]
	rep.AddNote("simulated %0.f hours compressed into a %.2fs run; capacity %.2f Mpps, offered 40%% of it",
		s.DiurnalHours, runRep.WallTime.Seconds(), capacityPPS/1e6)
	rep.AddNote("worker CPU utilization at 40%% offered load: %s (paper: core stayed under 40%%)", pct2(util))
	rep.AddNote("regulation over the whole window: %s (%d of %d packets hit the WSAF)",
		pct(float64(emissions)/float64(pkts)), emissions, pkts)
	rep.AddNote("worker queue occupancy: mean %.1f pkts, p99 %.0f of %d — bounded, no growth",
		meanQ, p99Q, 4096)
	rep.AddNote("WSAF: %d active flows, load factor %s, %d evictions",
		eng.Table().Len(), pct2(eng.Table().LoadFactor()), eng.Table().Stats().Evictions)
	rep.AddNote("paper: diurnal pattern with weekend dip; CPU <=40%%, queue flat, single core")
	return rep, nil
}

// Fig13WildAccuracy reproduces Fig. 13: estimation accuracy (standard
// error per size bucket) on the long real-world-like trace, for both
// packet and byte counting.
func Fig13WildAccuracy(s Scale) (*Report, error) {
	tr, err := campusTrace(s)
	if err != nil {
		return nil, err
	}
	eng, err := runEngine(tr, 32<<10, s.Seed)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "Fig.13",
		Title:  "Real-world-like estimation accuracy (RMS relative 'standard error')",
		Header: []string{"metric", "bucket", "flows", "std err"},
	}
	addBuckets := func(name string, buckets []float64,
		truthOf func(*trace.FlowTruth) float64,
		estOf func(pkts, bytes float64) float64,
	) {
		ests := make([][]float64, len(buckets))
		truths := make([][]float64, len(buckets))
		tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
			truth := truthOf(ft)
			idx := -1
			for i := len(buckets) - 1; i >= 0; i-- {
				if truth >= buckets[i] {
					idx = i
					break
				}
			}
			if idx < 0 {
				return
			}
			pkts, bytes := eng.Estimate(k)
			ests[idx] = append(ests[idx], estOf(pkts, bytes))
			truths[idx] = append(truths[idx], truth)
		})
		for i := range buckets {
			cell := "-"
			if len(ests[i]) > 0 {
				cell = pct2(stats.RMSRelErr(ests[i], truths[i]))
			}
			rep.AddRow(name, bucketLabel(buckets[i], unitOf(name)),
				fmt.Sprintf("%d", len(ests[i])), cell)
		}
	}
	addBuckets("packets", pktBuckets,
		func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) },
		func(pkts, _ float64) float64 { return pkts })
	addBuckets("bytes", byteBuckets,
		func(ft *trace.FlowTruth) float64 { return float64(ft.Bytes) },
		func(_, bytes float64) float64 { return bytes })

	rep.AddNote("paper (113h, 128KB sketch, 33MB WSAF): std err 0.54%%/1.61%%/3.46%% pkts, 0.63%%/1.74%%/3.65%% bytes")
	rep.AddNote("shape target: sub-4%% everywhere, error shrinking as flows grow")
	return rep, nil
}

func unitOf(metric string) string {
	if metric == "bytes" {
		return "B"
	}
	return "pkt"
}

// Fig14HeavyHitterRates reproduces Fig. 14: false positive and false
// negative rates of packet- and byte-based heavy-hitter detection on the
// campus-like trace.
func Fig14HeavyHitterRates(s Scale) (*Report, error) {
	tr, err := campusTrace(s)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "Fig.14",
		Title:  "Heavy-hitter detection false positive / false negative rates",
		Header: []string{"kind", "threshold", "true HHs", "FPR", "FNR"},
	}

	totalPkts := float64(len(tr.Packets))
	var totalBytes float64
	tr.EachTruth(func(_ packet.FlowKey, ft *trace.FlowTruth) {
		totalBytes += float64(ft.Bytes)
	})

	for _, frac := range []float64{0.0005, 0.001} {
		// At the paper's scale these fractions are millions of packets,
		// far above the sketch's ~100-packet retention; keep the same
		// relationship at reduced scale with absolute floors.
		thrPkts := math.Max(totalPkts*frac, 1000)
		thrBytes := math.Max(totalBytes*frac, 1e6)

		eng, err := core.New(core.Config{
			SketchMemoryBytes: 32 << 10,
			WSAFEntries:       1 << 20,
			Seed:              s.Seed,
		})
		if err != nil {
			return nil, err
		}
		det, err := detect.NewHeavyHitterDetector(thrPkts, thrBytes)
		if err != nil {
			return nil, err
		}
		det.Attach(eng)
		for i := range tr.Packets {
			eng.Process(tr.Packets[i])
		}

		for _, kind := range []string{"packets", "bytes"} {
			var predicted []packet.FlowKey
			var truth []packet.FlowKey
			if kind == "packets" {
				for k := range det.PacketHitters() {
					predicted = append(predicted, k)
				}
				tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
					if float64(ft.Pkts) >= thrPkts {
						truth = append(truth, k)
					}
				})
			} else {
				for k := range det.ByteHitters() {
					predicted = append(predicted, k)
				}
				tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
					if float64(ft.Bytes) >= thrBytes {
						truth = append(truth, k)
					}
				})
			}
			c := stats.Classify(predicted, truth, tr.Flows())
			thrLabel := fmt.Sprintf("%.0f pkts", thrPkts)
			if kind == "bytes" {
				thrLabel = fmt.Sprintf("%.1f MB", thrBytes/1e6)
			}
			rep.AddRow(kind, thrLabel, fmt.Sprintf("%d", len(truth)),
				pct(c.FPR()), pct(c.FNR()))
		}
	}
	rep.AddNote("thresholds at 0.05%% and 0.1%% of total traffic, as fractions of link volume")
	rep.AddNote("paper: FNR negligible in both cases; FPR <0.1%% (packets) and <0.2%% (bytes)")
	return rep, nil
}
