package experiments

import (
	"fmt"

	"instameasure/internal/flowreg"
	"instameasure/internal/memmodel"
	"instameasure/internal/rcc"
	"instameasure/internal/stats"
)

// Fig1RCCSaturation reproduces Fig. 1: single-layer RCC's saturation
// (WSAF-insertion) rate on a CAIDA-like trace, for 8- and 16-bit virtual
// vectors, against the DRAM speed margin. The paper observes 12–19%, far
// above the 5–10% margin SRAM has over DRAM — the motivation for the
// two-layer design.
func Fig1RCCSaturation(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	model := memmodel.Default()
	margin := model.SpeedMargin(memmodel.TierSRAM, memmodel.TierDRAM)

	rep := &Report{
		ID:     "Fig.1",
		Title:  "RCC saturation rate vs packet arrival rate (motivation)",
		Header: []string{"sketch", "vv bits", "ips/pps", "fits DRAM margin?"},
	}
	avgPPS := float64(len(tr.Packets)) / (float64(tr.Duration()) / 1e9)

	for _, vv := range []int{8, 16} {
		c, err := rcc.New(rcc.Config{MemoryBytes: 128 << 10, VectorBits: vv, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		for i := range tr.Packets {
			c.Encode(tr.Packets[i].Key.Hash64(s.Seed))
		}
		rate := float64(c.Saturations()) / float64(c.Encodes())
		fits := "no"
		if rate <= margin {
			fits = "yes"
		}
		rep.AddRow(fmt.Sprintf("RCC %d-bit", vv), fmt.Sprintf("%d", vv), pct(rate), fits)
	}
	rep.AddNote("trace: %d packets, %d flows, avg %.2f Mpps-shaped timestamps",
		len(tr.Packets), tr.Flows(), avgPPS/1e6)
	rep.AddNote("DRAM speed margin (SRAM/DRAM per-op): %s — paper band 5-10%%", pct(margin))
	rep.AddNote("paper: RCC saturates at 12-19%% of pps; expect the same band here")
	return rep, nil
}

// Fig7Relaxation reproduces Fig. 7: a timeline of packet arrival rate
// against the WSAF insertion rates produced by single-layer RCC (~12%)
// and FlowRegulator (~1%), both with 128 KB sketches.
func Fig7Relaxation(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	model := memmodel.Default()
	margin := model.SpeedMargin(memmodel.TierSRAM, memmodel.TierDRAM)

	single, err := rcc.New(rcc.Config{MemoryBytes: 128 << 10, VectorBits: 8, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	reg, err := flowreg.New(flowreg.Config{Layer: rcc.Config{
		MemoryBytes: 32 << 10, VectorBits: 8, Seed: s.Seed,
	}})
	if err != nil {
		return nil, err
	}

	start := tr.Packets[0].TS
	width := tr.Duration()/10 + 1
	ppsSeries := stats.NewTimeSeries(start, width)
	rccSeries := stats.NewTimeSeries(start, width)
	frSeries := stats.NewTimeSeries(start, width)

	var prevRCCSat, prevFREm uint64
	for i := range tr.Packets {
		p := &tr.Packets[i]
		h := p.Key.Hash64(s.Seed)
		single.Encode(h)
		reg.Process(h, int(p.Len))

		ppsSeries.Add(p.TS, 1)
		if sat := single.Saturations(); sat != prevRCCSat {
			rccSeries.Add(p.TS, float64(sat-prevRCCSat))
			prevRCCSat = sat
		}
		if em := reg.Emissions(); em != prevFREm {
			frSeries.Add(p.TS, float64(em-prevFREm))
			prevFREm = em
		}
	}

	rep := &Report{
		ID:     "Fig.7",
		Title:  "WSAF ips relaxation timeline: pps vs RCC ips vs FlowRegulator ips",
		Header: []string{"t-bucket", "pps", "RCC ips", "RCC %", "FR ips", "FR %"},
	}
	for i := 0; i < ppsSeries.Len(); i++ {
		pps := ppsSeries.Rate(i)
		if pps == 0 {
			continue
		}
		rccIPS := rccSeries.Rate(i)
		frIPS := frSeries.Rate(i)
		rep.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.0f", pps),
			fmt.Sprintf("%.0f", rccIPS),
			pct(rccIPS/pps),
			fmt.Sprintf("%.0f", frIPS),
			pct(frIPS/pps),
		)
	}
	rccRate := float64(single.Saturations()) / float64(single.Encodes())
	frRate := reg.RegulationRate()
	rep.AddNote("overall: RCC %s (paper ~12%%), FlowRegulator %s (paper ~1.02%%)",
		pct(rccRate), pct(frRate))
	rep.AddNote("DRAM margin %s: RCC fits=%v, FlowRegulator fits=%v",
		pct(margin), rccRate <= margin, frRate <= margin)
	rep.AddNote("both sketches use 128 KB total (FR: 4 x 32 KB layers)")
	return rep, nil
}
