package experiments

import (
	"fmt"

	"instameasure/internal/apps"
	"instameasure/internal/core"
	"instameasure/internal/flowhash"
	"instameasure/internal/packet"
	"instameasure/internal/trace"
)

// AppsDetection exercises the WSAF-consumer applications the paper names
// in Section II — SuperSpreader detection, DDoS victim detection, and
// flow-size entropy — on a workload with planted anomalies, and scores
// detection precision.
func AppsDetection(s Scale) (*Report, error) {
	background, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}

	// Plant three scanners with distinct spreads and one DDoS victim.
	rng := flowhash.NewRand(s.Seed ^ 0xA995)
	scanners := []struct {
		src    uint32
		spread int
	}{
		{0xC6336401, 2000},
		{0xC6336402, 800},
		{0xC6336403, 100}, // below threshold — must NOT be flagged
	}
	var planted []packet.Packet
	ts := int64(0)
	for _, sc := range scanners {
		for i := 0; i < sc.spread; i++ {
			planted = append(planted, packet.Packet{
				Key: packet.V4Key(sc.src, 0x0A000000+uint32(i),
					55555, uint16(rng.Intn(1024))+1, packet.ProtoTCP),
				Len: 60,
				TS:  ts,
			})
			ts += 50_000
		}
	}
	const victim = 0xCB007101
	const bots = 3000
	for i := 0; i < bots*3; i++ {
		planted = append(planted, packet.Packet{
			Key: packet.V4Key(0x20000000+uint32(i%bots), victim,
				uint16(rng.Intn(60000))+1, 80, packet.ProtoUDP),
			Len: 1200,
			TS:  ts,
		})
		ts += 20_000
	}
	tr := trace.Merge(background, trace.NewTrace(planted))

	spreader, err := apps.NewSuperSpreaderDetector(apps.SpreadConfig{Threshold: 500, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	ddos, err := apps.NewDDoSDetector(apps.SpreadConfig{Threshold: 1000, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	eng, err := core.New(core.Config{SketchMemoryBytes: 32 << 10, WSAFEntries: 1 << 18, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	for i := range tr.Packets {
		p := tr.Packets[i]
		eng.Process(p)
		spreader.Observe(p)
		ddos.Observe(p)
	}

	rep := &Report{
		ID:     "Ext.apps",
		Title:  "WSAF applications: SuperSpreader, DDoS victim, entropy",
		Header: []string{"detector", "flagged", "expected", "largest estimate"},
	}
	ss := spreader.SuperSpreaders()
	largestSS := 0.0
	if len(ss) > 0 {
		largestSS = ss[0].DistinctEst
	}
	rep.AddRow("superspreader (>=500 dsts)",
		fmt.Sprintf("%d", len(ss)), "2", fmt.Sprintf("%.0f", largestSS))

	victims := ddos.Victims()
	largestV := 0.0
	if len(victims) > 0 {
		largestV = victims[0].DistinctEst
	}
	rep.AddRow("ddos victim (>=1000 srcs)",
		fmt.Sprintf("%d", len(victims)), "1", fmt.Sprintf("%.0f", largestV))

	entropy := apps.NormalizedFlowSizeEntropy(eng.Snapshot())
	rep.AddNote("planted: scanners with 2000/800/100 distinct dsts (100 must stay unflagged), %d-bot flood", bots)
	rep.AddNote("normalized WSAF flow-size entropy: %.3f (concentration pushes this down)", entropy)
	return rep, nil
}

// AnomalyOnset demonstrates streaming anomaly detection: a DDoS flood is
// injected partway through a diurnal trace, and an EWMA change-point
// detector watching per-window source dispersion (distinct source
// addresses) must alarm promptly after onset and stay silent before it —
// a 5000-bot flood multiplies the source population no matter how the
// diurnal load swings.
func AnomalyOnset(s Scale) (*Report, error) {
	background, err := campusTrace(s)
	if err != nil {
		return nil, err
	}

	// Flood: many sources converging on one destination, starting at 60%
	// of the trace and lasting 20% of it, at ~4x the mean background rate
	// within its window.
	dur := background.Duration()
	start := background.Packets[0].TS + dur*6/10
	floodLen := dur / 5
	floodPkts := len(background.Packets) * 4 / 5 / 5
	const victim = 0xCB007105
	flood := make([]packet.Packet, 0, floodPkts)
	for i := 0; i < floodPkts; i++ {
		flood = append(flood, packet.Packet{
			Key: packet.V4Key(0x30000000+uint32(i%5000), victim,
				uint16(i%60000)+1, 80, packet.ProtoUDP),
			Len: 1200,
			TS:  start + int64(float64(i)/float64(floodPkts)*float64(floodLen)),
		})
	}
	tr := trace.Merge(background, trace.NewTrace(flood))

	det, err := apps.NewChangeDetector(apps.ChangeConfig{})
	if err != nil {
		return nil, err
	}

	const windows = 100
	width := tr.Duration()/windows + 1
	t0 := tr.Packets[0].TS
	onsetWindow := int((start - t0) / width)

	sources := map[uint32]struct{}{}
	curWindow := -1
	alarmWindow := -1
	falseAlarms := 0
	flush := func(w int) {
		if w < 0 || len(sources) == 0 {
			return
		}
		if _, alarm := det.Observe(float64(len(sources))); alarm {
			if w >= onsetWindow {
				if alarmWindow < 0 {
					alarmWindow = w
				}
			} else {
				falseAlarms++
			}
		}
	}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		w := int((p.TS - t0) / width)
		if w != curWindow {
			flush(curWindow)
			sources = map[uint32]struct{}{}
			curWindow = w
		}
		sources[p.Key.SrcIPv4()] = struct{}{}
	}
	flush(curWindow)

	rep := &Report{
		ID:     "Ext.onset",
		Title:  "DDoS onset detection via source-dispersion change point",
		Header: []string{"onset window", "alarm window", "delay (windows)", "false alarms"},
	}
	alarmCell, delayCell := "-", "-"
	if alarmWindow >= 0 {
		alarmCell = fmt.Sprintf("%d", alarmWindow)
		delayCell = fmt.Sprintf("%d", alarmWindow-onsetWindow)
	}
	rep.AddRow(fmt.Sprintf("%d", onsetWindow), alarmCell, delayCell,
		fmt.Sprintf("%d", falseAlarms))
	rep.AddNote("flood: 5000 sources -> 1 destination over windows %d-%d of %d",
		onsetWindow, int((start+floodLen-t0)/width), windows)
	rep.AddNote("signal: distinct source addresses per window; EWMA alpha 0.1, 4 mean deviations, 10-window warmup")
	return rep, nil
}
