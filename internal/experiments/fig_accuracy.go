package experiments

import (
	"fmt"

	"instameasure/internal/core"
	"instameasure/internal/detect"
	"instameasure/internal/packet"
	"instameasure/internal/stats"
	"instameasure/internal/trace"
	"instameasure/internal/wsaf"
)

// memorySweep is the L1-counter memory sweep of Fig. 10/11 (total
// FlowRegulator memory is 4×: 128 KB – 2048 KB, as in Section IV.D).
var memorySweep = []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}

// Flow-size buckets. The paper buckets CAIDA flows at 10K+/100K+/1M+
// packets on a 3.7 B-packet trace; this reproduction scales the thresholds
// with the trace so each bucket stays populated (the note on each report
// records the mapping).
var (
	pktBuckets  = []float64{1_000, 10_000, 100_000}
	byteBuckets = []float64{1e6, 1e7, 5e7}
)

// runEngine processes tr through a fresh single-core engine.
func runEngine(tr *trace.Trace, l1Bytes int, seed uint64) (*core.Engine, error) {
	eng, err := core.New(core.Config{
		SketchMemoryBytes: l1Bytes,
		WSAFEntries:       1 << 20,
		Seed:              seed,
	})
	if err != nil {
		return nil, err
	}
	for i := range tr.Packets {
		eng.Process(tr.Packets[i])
	}
	return eng, nil
}

// bucketErrors computes the mean relative error per size bucket, using the
// metric selectors to pick packets or bytes.
func bucketErrors(
	tr *trace.Trace,
	eng *core.Engine,
	buckets []float64,
	truthOf func(*trace.FlowTruth) float64,
	estOf func(pkts, bytes float64) float64,
) ([]float64, []int) {
	errs := make([]float64, len(buckets))
	ns := make([]int, len(buckets))
	tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
		truth := truthOf(ft)
		idx := -1
		for i := len(buckets) - 1; i >= 0; i-- {
			if truth >= buckets[i] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		pkts, bytes := eng.Estimate(k)
		errs[idx] += stats.RelErr(estOf(pkts, bytes), truth)
		ns[idx]++
	})
	for i := range errs {
		if ns[i] > 0 {
			errs[i] /= float64(ns[i])
		}
	}
	return errs, ns
}

// topKRecall computes the recall of the engine's Top-K list against ground
// truth for the given metric.
func topKRecall(
	tr *trace.Trace,
	eng *core.Engine,
	k int,
	byBytes bool,
) float64 {
	var got []packet.FlowKey
	entries := eng.Snapshot()
	metric := func(e *wsaf.Entry) float64 { return e.Pkts }
	truthMetric := func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) }
	if byBytes {
		metric = func(e *wsaf.Entry) float64 { return e.Bytes }
		truthMetric = func(ft *trace.FlowTruth) float64 { return float64(ft.Bytes) }
	}
	got = detect.TopKKeys(entries, k, metric)
	truth := tr.TopTruth(k, truthMetric)
	return stats.Recall(got, truth)
}

// Fig10PacketAccuracy reproduces Fig. 10: packet-count error rates per
// flow-size bucket across the memory sweep, plus packet Top-K recall.
func Fig10PacketAccuracy(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "Fig.10",
		Title: "Packet-counter accuracy vs memory, and packet Top-K recall",
		Header: []string{"L1 mem", "total mem",
			bucketLabel(pktBuckets[0], "pkt"), bucketLabel(pktBuckets[1], "pkt"), bucketLabel(pktBuckets[2], "pkt")},
	}
	var last *core.Engine
	for _, mem := range memorySweep {
		eng, err := runEngine(tr, mem, s.Seed)
		if err != nil {
			return nil, err
		}
		last = eng
		errs, ns := bucketErrors(tr, eng, pktBuckets,
			func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) },
			func(pkts, _ float64) float64 { return pkts },
		)
		rep.AddRow(
			fmt.Sprintf("%dKB", mem>>10),
			fmt.Sprintf("%dKB", mem*4>>10),
			errCell(errs[0], ns[0]), errCell(errs[1], ns[1]), errCell(errs[2], ns[2]),
		)
	}

	for _, k := range []int{100, 1_000, 10_000} {
		if k > tr.Flows() {
			break
		}
		rep.AddNote("packet Top-%d recall (%dKB L1): %s",
			k, memorySweep[len(memorySweep)-1]>>10, pct2(topKRecall(tr, last, k, false)))
	}
	rep.AddNote("buckets scaled from the paper's 10K+/100K+/1M+ by the trace scale-down factor")
	rep.AddNote("paper at 128KB total: 3.48%% (10K+), 1.54%% (100K+), 0.56%% (1M+); error falls as memory grows")
	return rep, nil
}

// Fig11ByteAccuracy reproduces Fig. 11: byte-counter error rates per
// volume bucket across the memory sweep, plus byte Top-K recall.
func Fig11ByteAccuracy(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "Fig.11",
		Title: "Byte-counter accuracy vs memory, and byte Top-K recall",
		Header: []string{"L1 mem", "total mem",
			bucketLabel(byteBuckets[0], "B"), bucketLabel(byteBuckets[1], "B"), bucketLabel(byteBuckets[2], "B")},
	}
	var last *core.Engine
	for _, mem := range memorySweep {
		eng, err := runEngine(tr, mem, s.Seed)
		if err != nil {
			return nil, err
		}
		last = eng
		errs, ns := bucketErrors(tr, eng, byteBuckets,
			func(ft *trace.FlowTruth) float64 { return float64(ft.Bytes) },
			func(_, bytes float64) float64 { return bytes },
		)
		rep.AddRow(
			fmt.Sprintf("%dKB", mem>>10),
			fmt.Sprintf("%dKB", mem*4>>10),
			errCell(errs[0], ns[0]), errCell(errs[1], ns[1]), errCell(errs[2], ns[2]),
		)
	}

	for _, k := range []int{100, 1_000, 10_000} {
		if k > tr.Flows() {
			break
		}
		rep.AddNote("byte Top-%d recall (%dKB L1): %s",
			k, memorySweep[len(memorySweep)-1]>>10, pct2(topKRecall(tr, last, k, true)))
	}
	rep.AddNote("byte estimation is saturation-sampled: est_byte = est_pkt x len(triggering packet)")
	rep.AddNote("paper at 128KB total: 3.47%% (10MB+), 1.57%% (100MB+), 0.54%% (1GB+)")
	return rep, nil
}

func bucketLabel(lo float64, unit string) string {
	switch {
	case lo >= 1e9:
		return fmt.Sprintf("%.0fG%s+ err", lo/1e9, unit)
	case lo >= 1e6:
		return fmt.Sprintf("%.0fM%s+ err", lo/1e6, unit)
	case lo >= 1e3:
		return fmt.Sprintf("%.0fK%s+ err", lo/1e3, unit)
	default:
		return fmt.Sprintf("%.0f%s+ err", lo, unit)
	}
}

func errCell(err float64, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%s (n=%d)", pct2(err), n)
}
