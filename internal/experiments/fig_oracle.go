package experiments

import (
	"fmt"
	"math"
	"sort"

	"instameasure/internal/core"
	"instameasure/internal/oracle"
)

// OracleDifferential runs the differential correctness harness as an
// experiment: the CAIDA-like trace replayed through the exact reference,
// the scalar engine, the batch path, and the concurrent pipeline, with
// every invariant checked and the measured per-flow error bucketed by flow
// size against the analytic envelope. A healthy system shows margin
// (measured error / bound) well below 1 in every bucket and zero
// invariant violations.
func OracleDifferential(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	rep, err := oracle.Run(tr, oracle.Config{
		Engine: core.Config{
			WSAFEntries: 1 << 15,
			Seed:        s.Seed,
		},
		Workers: 4,
	})
	if err != nil {
		return nil, err
	}

	out := &Report{
		ID:     "oracle",
		Title:  "Differential oracle: measured error vs analytic envelope",
		Header: []string{"flow size", "flows", "mean err", "max err", "bound@max", "margin"},
	}

	// Bucket checked flows by truth size in powers of 4 above the floor.
	floor := rep.Env.Floor(0)
	type bucket struct {
		count          int
		sumRel, maxRel float64
		boundAtMax     float64
		maxOverBound   float64
	}
	buckets := map[int]*bucket{}
	for _, c := range rep.Checks {
		idx := int(math.Log(c.Truth/floor) / math.Log(4))
		b := buckets[idx]
		if b == nil {
			b = &bucket{}
			buckets[idx] = b
		}
		b.count++
		b.sumRel += c.RelErr
		if c.RelErr > b.maxRel {
			b.maxRel = c.RelErr
			b.boundAtMax = c.Bound
		}
		if over := c.RelErr / c.Bound; over > b.maxOverBound {
			b.maxOverBound = over
		}
	}
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		b := buckets[i]
		lo := floor * math.Pow(4, float64(i))
		out.AddRow(
			fmt.Sprintf("≥%.0f pkts", lo),
			fmt.Sprintf("%d", b.count),
			pct(b.sumRel/float64(b.count)),
			pct(b.maxRel),
			pct(b.boundAtMax),
			fmt.Sprintf("%.2f", b.maxOverBound),
		)
	}

	out.AddNote("packets=%d flows=%d checked=%d (floor %.0f pkts = 2× retention capacity)",
		rep.Packets, rep.Flows, rep.Checked, floor)
	out.AddNote("std-err %.4f, mean rel-err %.4f, max rel-err %.4f, max err/bound %.2f",
		rep.StdErr, rep.MeanRelErr, rep.MaxRelErr, rep.MaxOverBound)
	out.AddNote("envelope: %d-sigma, per-emission %.1f, retention %.1f, emission cv %.3f",
		int(rep.Env.Sigmas), rep.Env.PerEmission, rep.Env.Retention, rep.Env.EmissionCV)
	if rep.Ok() {
		out.AddNote("invariants: all passed (batch ≡ scalar ≡ pipeline, conservation, TTL hygiene, export round-trip)")
	} else {
		for _, v := range rep.Violations {
			out.AddNote("VIOLATION: %s", v)
		}
	}
	return out, nil
}
