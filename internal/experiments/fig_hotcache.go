package experiments

import (
	"fmt"

	"instameasure/internal/core"
	"instameasure/internal/memmodel"
	"instameasure/internal/stats"
	"instameasure/internal/trace"
)

// hotCacheSweep is the promotion-cache capacity sweep: off, then three
// sizes around the ~4k-entry L2-resident default.
var hotCacheSweep = []int{0, 1024, 4096, 16384}

// HotCacheAccuracy measures what the tiered promotion cache buys on a
// skewed workload: heavy flows promoted into the cache are counted
// exactly from promotion onward instead of through the saturation-sampled
// sketch path, so heavy-hitter error falls as the cache grows, while the
// regulator sees only the cold tail. Rows sweep the cache capacity; the
// note cross-references the memmodel speedup at the measured operating
// point.
func HotCacheAccuracy(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	k := 1000
	if k > tr.Flows() {
		k = tr.Flows()
	}
	topTruth := tr.TopTruth(k, func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) })

	rep := &Report{
		ID:    "HotCache",
		Title: "Promotion-cache accuracy: exact heavy-hitter counting vs saturation sampling",
		Header: []string{"cache", "hit rate", "promos", "demos",
			fmt.Sprintf("top-%d cached", k), fmt.Sprintf("top-%d pkt err", k)},
	}

	var plainRatio, cachedHitRate float64
	for _, entries := range hotCacheSweep {
		eng, err := core.New(core.Config{
			SketchMemoryBytes: 32 << 10,
			WSAFEntries:       1 << 18,
			HotCacheEntries:   entries,
			Seed:              s.Seed,
		})
		if err != nil {
			return nil, err
		}
		const burst = 256
		for off := 0; off < len(tr.Packets); off += burst {
			end := off + burst
			if end > len(tr.Packets) {
				end = len(tr.Packets)
			}
			eng.ProcessBatch(tr.Packets[off:end])
		}

		var errSum float64
		cached := 0
		cache := eng.HotCache()
		for _, key := range topTruth {
			truth := float64(tr.Truth(key).Pkts)
			pkts, _ := eng.Estimate(key)
			errSum += stats.RelErr(pkts, truth)
			if cache != nil {
				if _, ok := cache.Lookup(key.Hash64(eng.HashSeed()), key); ok {
					cached++
				}
			}
		}
		meanErr := errSum / float64(len(topTruth))

		if entries == 0 {
			plainRatio = float64(eng.Regulator().Emissions()) / float64(eng.Packets())
			rep.AddRow("off", "-", "-", "-", "-", pct2(meanErr))
			rep.SetMetric("top1k_err_uncached", meanErr)
			continue
		}
		cs := cache.Stats()
		hitRate := float64(cs.Hits) / float64(eng.Packets())
		rep.AddRow(
			fmt.Sprintf("%d", entries),
			pct2(hitRate),
			fmt.Sprintf("%d", cs.Promotions),
			fmt.Sprintf("%d", cs.Demotions),
			fmt.Sprintf("%d/%d", cached, len(topTruth)),
			pct2(meanErr),
		)
		if entries == 4096 {
			cachedHitRate = hitRate
			rep.SetMetric("hit_rate", hitRate)
			rep.SetMetric("top1k_err_cached", meanErr)
		}
	}

	m := memmodel.Default()
	rep.AddNote("promoted flows count exactly from promotion onward; residual error is the pre-promotion sketch segment")
	rep.AddNote("modeled per-packet speedup at the 4096-entry operating point (hit rate %s, regulation %s): %.2fx",
		pct2(cachedHitRate), pct2(plainRatio), m.CacheSpeedup(cachedHitRate, plainRatio))
	return rep, nil
}
