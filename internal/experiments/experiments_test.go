package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps each runner fast; shape assertions use small bands.
var tinyScale = Scale{
	Flows: 8_000, Packets: 150_000,
	DiurnalHours: 12, DiurnalPackets: 120_000,
	Seed: 2019,
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.Fields(cell)[0]
	cell = strings.TrimSuffix(cell, "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", cell, err)
	}
	return v / 100
}

func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.Fields(cell)[0], "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", cell, err)
	}
	return v
}

func TestFig1ShapeRCCAboveMargin(t *testing.T) {
	rep, err := Fig1RCCSaturation(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (8- and 16-bit)", len(rep.Rows))
	}
	r8 := parsePct(t, rep.Rows[0][2])
	r16 := parsePct(t, rep.Rows[1][2])
	if r8 < 0.05 || r8 > 0.30 {
		t.Errorf("8-bit RCC rate %.3f outside plausible band", r8)
	}
	if r16 >= r8 {
		t.Errorf("16-bit rate %.3f not below 8-bit rate %.3f", r16, r8)
	}
	if rep.Rows[0][3] != "no" {
		t.Error("8-bit RCC must not fit the DRAM margin — that is the paper's motivation")
	}
}

func TestFig6ShapeZipf(t *testing.T) {
	rep, err := Fig6Distributions(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// First bucket of each dataset ([1,10) mice) must hold the majority.
	for _, row := range rep.Rows {
		if strings.HasPrefix(row[1], "[1, 10)") {
			if share := parsePct(t, row[3]); share < 0.5 {
				t.Errorf("%s mice share %.2f < 50%% — not Zipf-like", row[0], share)
			}
		}
	}
}

func TestFig7ShapeFlowRegulatorBelowRCC(t *testing.T) {
	rep, err := Fig7Relaxation(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no timeline rows")
	}
	for _, row := range rep.Rows {
		rcc := parsePct(t, row[3])
		fr := parsePct(t, row[5])
		if fr >= rcc {
			t.Errorf("bucket %s: FR rate %.4f not below RCC rate %.4f", row[0], fr, rcc)
		}
		if fr > 0.05 {
			t.Errorf("bucket %s: FR rate %.4f above 5%%", row[0], fr)
		}
	}
}

func TestFig8aShapeMultiplicativeGrowth(t *testing.T) {
	rep, err := Fig8aRetention(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var prevFR float64
	for i, row := range rep.Rows {
		fr := parseFloat(t, row[2])
		if i > 0 && fr <= prevFR {
			t.Errorf("FR retention not growing at row %d", i)
		}
		prevFR = fr
	}
	// At 16 bits and beyond, FR must outretain RCC (paper's claim).
	for _, row := range rep.Rows[1:] {
		if parseFloat(t, row[2]) <= parseFloat(t, row[1]) {
			t.Errorf("vv=%s: FR %s not above RCC %s", row[0], row[2], row[1])
		}
	}
}

func TestFig8bShapeFrequencyInverse(t *testing.T) {
	rep, err := Fig8bSaturationFrequency(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows[1:] {
		if parseFloat(t, row[2]) >= parseFloat(t, row[1]) {
			t.Errorf("vv=%s: FR frequency not below RCC's", row[0])
		}
	}
}

func TestFig8cShapeBothAccurate(t *testing.T) {
	rep, err := Fig8cAccuracy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		rccErr := parsePct(t, row[1])
		frErr := parsePct(t, row[2])
		if rccErr > 0.10 || frErr > 0.10 {
			t.Errorf("vv=%s: errors %.3f/%.3f above 10%%", row[0], rccErr, frErr)
		}
	}
}

func TestFig9aShapeModeledScaling(t *testing.T) {
	rep, err := Fig9aCoreScaling(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	var prev float64
	for i, row := range rep.Rows {
		agg := parseFloat(t, row[2])
		// Shape check with slack: the busy-time estimate on the tiny trace
		// carries scheduling noise, so allow a small dip between steps.
		if i > 0 && agg < prev*0.90 {
			t.Errorf("aggregate Mpps decreased at %s workers: %.2f after %.2f", row[0], agg, prev)
		}
		prev = agg
	}
	if sp := parseFloat(t, rep.Rows[3][3]); sp < 1.5 {
		t.Errorf("aggregate 4-worker speedup %.2f < 1.5x", sp)
	}
}

func TestFig9bShapeLatencyFallsWithRate(t *testing.T) {
	rep, err := Fig9bDetectionLatency(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i, row := range rep.Rows {
		if strings.HasPrefix(row[3], "0/") {
			t.Fatalf("rate %s kpps: no attack detected", row[0])
		}
		lat := parseFloat(t, row[1])
		if i == 0 {
			first = lat
		}
		last = lat
		deleg := parseFloat(t, row[2])
		if lat >= deleg {
			t.Errorf("rate %s: saturation latency %.3f not below delegation %.3f",
				row[0], lat, deleg)
		}
	}
	if last >= first {
		t.Errorf("latency did not fall with rate: %.3f -> %.3f ms", first, last)
	}
	if first > 15 {
		t.Errorf("10 kpps latency %.3f ms far above the paper's ~10 ms", first)
	}
}

func TestFig10ShapeErrorsSmall(t *testing.T) {
	rep, err := Fig10PacketAccuracy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 memory settings", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for _, cell := range row[2:] {
			if cell == "-" {
				continue
			}
			if e := parsePct(t, cell); e > 0.10 {
				t.Errorf("mem %s: bucket error %.3f above 10%%", row[0], e)
			}
		}
	}
	// Top-100 recall note must report ≥90%.
	for _, n := range rep.Notes {
		if strings.Contains(n, "Top-100 recall") {
			fields := strings.Fields(n)
			if r := parsePct(t, fields[len(fields)-1]); r < 0.9 {
				t.Errorf("top-100 recall %.2f < 90%%", r)
			}
		}
	}
}

func TestFig11ShapeErrorsSmall(t *testing.T) {
	rep, err := Fig11ByteAccuracy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		for _, cell := range row[2:] {
			if cell == "-" {
				continue
			}
			if e := parsePct(t, cell); e > 0.12 {
				t.Errorf("mem %s: byte bucket error %.3f above 12%%", row[0], e)
			}
		}
	}
}

func TestFig12ShapeBoundedSystem(t *testing.T) {
	rep, err := Fig12Monitoring(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no time windows")
	}
	var foundUtil, foundReg bool
	for _, n := range rep.Notes {
		if strings.Contains(n, "CPU utilization") {
			foundUtil = true
		}
		if strings.Contains(n, "regulation over the whole window") {
			foundReg = true
		}
	}
	if !foundUtil || !foundReg {
		t.Error("missing utilization or regulation notes")
	}
}

func TestFig13ShapeErrorShrinksWithSize(t *testing.T) {
	rep, err := Fig13WildAccuracy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 pkt + 3 byte buckets)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[3] == "-" {
			continue
		}
		if e := parsePct(t, row[3]); e > 0.12 {
			t.Errorf("%s %s: std err %.3f above 12%%", row[0], row[1], e)
		}
	}
}

func TestFig14ShapeLowRates(t *testing.T) {
	rep, err := Fig14HeavyHitterRates(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		fpr := parsePct(t, row[3])
		fnr := parsePct(t, row[4])
		if fpr > 0.01 {
			t.Errorf("%s %s: FPR %.4f above 1%%", row[0], row[1], fpr)
		}
		if fnr > 0.10 {
			t.Errorf("%s %s: FNR %.4f above 10%%", row[0], row[1], fnr)
		}
	}
}

func TestCSMComparisonShape(t *testing.T) {
	rep, err := CSMComparison(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	imTop1000 := parsePct(t, rep.Rows[0][3])
	csmTop1000 := parsePct(t, rep.Rows[1][3])
	if imTop1000 >= csmTop1000 {
		t.Errorf("InstaMeasure top-1000 err %.3f not below CSM's %.3f", imTop1000, csmTop1000)
	}
}

func TestByIDAndAll(t *testing.T) {
	if _, err := ByID("nonsense", tinyScale); err == nil {
		t.Error("unknown id must fail")
	}
	rep, err := ByID("8a", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "Fig.8a" {
		t.Errorf("ByID(8a) returned %s", rep.ID)
	}
}

func TestReportPrint(t *testing.T) {
	rep := &Report{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "bb"},
	}
	rep.AddRow("1", "2")
	rep.AddNote("hello %d", 5)
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== T: test ==", "a", "bb", "hello 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed report missing %q:\n%s", want, out)
		}
	}
}

func TestIBLTComparisonShape(t *testing.T) {
	rep, err := IBLTComparison(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 load points", len(rep.Rows))
	}
	// Below capacity the IBLT must decode completely; at 2x it must not.
	if rep.Rows[0][2] != "true" {
		t.Error("IBLT incomplete below capacity")
	}
	if rep.Rows[3][2] != "false" {
		t.Error("IBLT claimed completeness at 2x overload")
	}
	// WSAF recall must stay high at every load point.
	for _, row := range rep.Rows {
		if r := parsePct(t, row[4]); r < 0.9 {
			t.Errorf("WSAF top-100 recall %.2f < 90%% at load %s", r, row[0])
		}
	}
}

func TestDelegationLoopbackShape(t *testing.T) {
	rep, err := DelegationLoopback(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "8" {
		t.Errorf("epochs = %s, want 8", rep.Rows[0][0])
	}
	if rtt := parseFloat(t, rep.Rows[0][2]); rtt <= 0 || rtt > 1000 {
		t.Errorf("mean RTT %v ms implausible", rtt)
	}
}

func TestAblationEvictionShape(t *testing.T) {
	rep, err := AblationEviction(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	sc := parsePct(t, rep.Rows[0][1])
	ef := parsePct(t, rep.Rows[1][1])
	if sc < ef-0.05 {
		t.Errorf("second-chance recall %.2f well below evict-first %.2f", sc, ef)
	}
}

func TestAblationProbingShape(t *testing.T) {
	rep, err := AblationProbing(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if steps := parseFloat(t, row[1]); steps < 1 || steps > 16 {
			t.Errorf("%s probe steps/op = %v out of [1,16]", row[0], steps)
		}
	}
}

func TestAblationShardingShape(t *testing.T) {
	rep, err := AblationShardingQuality(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	pop := parsePct(t, rep.Rows[0][2])
	rr := parsePct(t, rep.Rows[1][2])
	if pop > rr {
		t.Errorf("popcount top-100 error %.3f above round-robin %.3f — affinity should win", pop, rr)
	}
}

func TestAppsDetectionShape(t *testing.T) {
	rep, err := AppsDetection(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][1] != rep.Rows[0][2] {
		t.Errorf("superspreader flagged %s, expected %s", rep.Rows[0][1], rep.Rows[0][2])
	}
	if rep.Rows[1][1] != rep.Rows[1][2] {
		t.Errorf("ddos flagged %s, expected %s", rep.Rows[1][1], rep.Rows[1][2])
	}
}

func TestAnomalyOnsetShape(t *testing.T) {
	rep, err := AnomalyOnset(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][1] == "-" {
		t.Fatal("flood onset never alarmed")
	}
	if delay := parseFloat(t, rep.Rows[0][2]); delay < 0 || delay > 10 {
		t.Errorf("onset delay %v windows outside [0,10]", delay)
	}
	if fa := parseFloat(t, rep.Rows[0][3]); fa > 6 {
		t.Errorf("%v false alarms before onset", fa)
	}
}

func TestLayersSweepShape(t *testing.T) {
	rep, err := LayersSweep(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 depths", len(rep.Rows))
	}
	prev := 1.0
	for _, row := range rep.Rows {
		rate := parsePct(t, row[2])
		if rate >= prev {
			t.Errorf("layers=%s: rate %.5f not below previous %.5f", row[0], rate, prev)
		}
		prev = rate
	}
	// 3+ layers must fit even the TCAM-grade margin.
	if rep.Rows[1][4] != "true" || rep.Rows[2][4] != "true" {
		t.Error("deep chains must fit the TCAM-grade margin")
	}
}

func TestHotCacheAccuracyShape(t *testing.T) {
	rep, err := HotCacheAccuracy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(hotCacheSweep) {
		t.Fatalf("rows = %d, want %d cache points", len(rep.Rows), len(hotCacheSweep))
	}
	// The acceptance criterion for the cache tier: top-1k heavy-hitter
	// error with a 4k cache must undercut the uncached sketch-only error,
	// because promoted flows count exactly from promotion onward.
	uncached := parsePct(t, rep.Rows[0][5])
	cached := parsePct(t, rep.Rows[2][5])
	if cached >= uncached {
		t.Errorf("4k-cache top-1k err %.4f not below uncached %.4f", cached, uncached)
	}
	// A skewed workload must produce a substantial hit rate at 4k entries.
	if hr := parsePct(t, rep.Rows[2][1]); hr < 0.2 {
		t.Errorf("4k-cache hit rate %.3f implausibly low on a Zipf trace", hr)
	}
	if rep.Metrics["hit_rate"] <= 0 {
		t.Error("hit_rate metric not set")
	}
}
