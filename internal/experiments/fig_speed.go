package experiments

import (
	"fmt"
	"math"
	"runtime"

	"instameasure/internal/core"
	"instameasure/internal/detect"
	"instameasure/internal/packet"
	"instameasure/internal/pipeline"
	"instameasure/internal/stats"
	"instameasure/internal/trace"
)

// Fig9aCoreScaling reproduces Fig. 9(a): processing throughput as worker
// cores scale 1→4 over a pre-loaded trace. The paper ran on an 8-core Atom
// board (18.9→46.3 Mpps for 1→4 cores) with its popcount dispatch; this
// reproduction runs the shared-nothing ingest under the same popcount
// policy. When the host has fewer physical cores than the sweep needs, the
// wall clock serializes the workers, so k-core throughput is modeled from
// per-worker busy time — total packets over the bottleneck worker's CPU
// time (Report.AggregateMPPS) — which is exactly the per-core capacity the
// paper's one-core-per-worker board realizes. Host wall-clock numbers are
// reported alongside.
func Fig9aCoreScaling(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "Fig.9a",
		Title:  "Processing speed vs number of worker cores",
		Header: []string{"workers", "host Mpps", "aggregate Mpps", "speedup", "efficiency"},
	}
	runOnce := func(workers int) (float64, float64, error) {
		sys, err := pipeline.New(pipeline.Config{
			Workers:    workers,
			Ingest:     pipeline.IngestSharded,
			HashPolicy: pipeline.PopcountHashShard,
			Engine: core.Config{
				SketchMemoryBytes: 32 << 10,
				WSAFEntries:       1 << 18,
				Seed:              s.Seed,
			},
		})
		if err != nil {
			return 0, 0, err
		}
		repRun, err := sys.Run(tr.Source())
		if err != nil {
			return 0, 0, err
		}
		return repRun.MPPS(), repRun.AggregateMPPS(), nil
	}
	var base, topAgg, topEff float64
	for _, workers := range []int{1, 2, 3, 4} {
		// Best of two runs: in the busy-time capacity model scheduling
		// noise only subtracts, so the max is the better estimate.
		host, agg, err := runOnce(workers)
		if err != nil {
			return nil, err
		}
		host2, agg2, err := runOnce(workers)
		if err != nil {
			return nil, err
		}
		host = math.Max(host, host2)
		agg = math.Max(agg, agg2)
		if workers == 1 {
			base = agg
		}
		eff := agg / (float64(workers) * base)
		topAgg, topEff = agg, eff
		rep.AddRow(
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.2f", host),
			fmt.Sprintf("%.2f", agg),
			fmt.Sprintf("%.2fx", agg/base),
			fmt.Sprintf("%.2f", eff),
		)
	}
	rep.SetMetric("mpps", topAgg)
	rep.SetMetric("scaling_eff", topEff)
	rep.AddNote("host has %d core(s); aggregate column models one core per worker from per-worker busy time, as on the paper's 8-core board", runtime.NumCPU())
	rep.AddNote("shared-nothing ingest, popcount policy (paper-faithful); elephants pin their worker, so efficiency tracks the trace's flow-size skew")
	rep.AddNote("paper (8-core Atom + DPDK): 18.9 / 25.5 / 36.2 / 46.3 Mpps for 1-4 cores — sub-linear, manager-bounded; shared-nothing ingest removes the manager bound")
	return rep, nil
}

// Fig9bDetectionLatency reproduces Fig. 9(b): heavy-hitter detection delay
// versus attacker transmission rate (10–200 kpps), comparing the paper's
// saturation-based decoding against the packet-arrival ground truth and
// the delegation (remote collector) discipline.
func Fig9bDetectionLatency(s Scale) (*Report, error) {
	rep := &Report{
		ID:     "Fig.9b",
		Title:  "Heavy-hitter detection latency vs attack rate",
		Header: []string{"rate (kpps)", "saturation-based", "delegation-based", "detected"},
	}

	const threshold = 500 // packets (0.05% of link capacity in the paper)
	const attackers = 8   // independent attack flows per rate, averaged
	rates := []float64{10e3, 30e3, 50e3, 100e3, 130e3, 200e3}
	for _, rate := range rates {
		// Run the attacks long enough to cross the threshold several
		// times over.
		duration := int64(threshold / rate * 20 * 1e9)
		if duration < 50e6 {
			duration = 50e6
		}
		var tr *trace.Trace
		var err error
		for a := 0; a < attackers; a++ {
			attack := packet.V4Key(0xAAAA0001+uint32(a), 0x0B0B0B0B, 4444, 80, packet.ProtoUDP)
			tr, err = trace.Inject(tr, trace.InjectConfig{
				Key:        attack,
				RatePPS:    rate,
				StartTS:    0,
				DurationNs: duration,
				Seed:       s.Seed + uint64(a),
			})
			if err != nil {
				return nil, err
			}
		}

		eng, err := core.New(core.Config{
			SketchMemoryBytes: 32 << 10,
			WSAFEntries:       1 << 14,
			Seed:              s.Seed,
		})
		if err != nil {
			return nil, err
		}
		det, err := detect.NewHeavyHitterDetector(threshold, 0)
		if err != nil {
			return nil, err
		}
		det.Attach(eng)
		for i := range tr.Packets {
			eng.Process(tr.Packets[i])
		}

		truth, err := detect.TruthCrossings(tr, threshold, 0)
		if err != nil {
			return nil, err
		}
		satLat := detect.Latencies(truth, det.PacketHitters())
		delegLat, err := detect.DelegationLatencies(truth, 20e6, 10e6) // 20ms epochs, 10ms RTT
		if err != nil {
			return nil, err
		}

		// Detection jitter is ± one saturation interval (the estimate can
		// overshoot and alarm one saturation early); the figure reports
		// the mean magnitude of the detection offset.
		var satAbs []float64
		for _, l := range satLat {
			satAbs = append(satAbs, float64(abs64(l.LatencyNs))/1e6)
		}
		var delegMs []float64
		for _, l := range delegLat {
			delegMs = append(delegMs, float64(l.LatencyNs)/1e6)
		}
		satCell := "-"
		detected := fmt.Sprintf("%d/%d", len(satLat), attackers)
		if len(satAbs) > 0 {
			satCell = fmt.Sprintf("%.3f ms", stats.Mean(satAbs))
		}
		rep.AddRow(fmt.Sprintf("%.0f", rate/1e3), satCell,
			fmt.Sprintf("%.3f ms", stats.Mean(delegMs)), detected)
	}
	rep.AddNote("threshold %d packets, %d attack flows per rate; saturation-based = this system, delegation = 20ms epochs + 10ms network", threshold, attackers)
	rep.AddNote("paper: ~10ms at 10 kpps falling to ~1ms at 130 kpps; heavier attackers are caught faster")
	return rep, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// queueStats summarizes queue occupancy samples for Fig. 12.
func queueStats(samples []pipeline.QueueSample) (mean, p99 float64) {
	var depths []float64
	for _, s := range samples {
		for _, d := range s.Depths {
			depths = append(depths, float64(d))
		}
	}
	return stats.Mean(depths), stats.Percentile(depths, 99)
}
