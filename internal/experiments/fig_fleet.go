package experiments

import (
	"fmt"
	"time"

	"instameasure/internal/core"
	"instameasure/internal/detect"
	"instameasure/internal/export"
	"instameasure/internal/fleet"
	"instameasure/internal/packet"
	"instameasure/internal/trace"
)

// FleetAggregation exercises the network-wide tier end to end over real
// TCP loopback: two meters at distinct sites measure different slices
// of traffic — one slice carrying a spoofed DDoS flood — and export
// per-epoch cumulative snapshots to one collector running the fleet
// aggregator and a DDoS-victim detector. Scored: network-wide top-k
// against the oracle union of both traces, and detector
// precision/recall with episode hysteresis (the sustained flood must
// fire exactly once).
func FleetAggregation(s Scale) (*Report, error) {
	bgA, err := trace.GenerateZipf(trace.ZipfConfig{
		Flows: s.Flows / 4, TotalPackets: s.Packets / 4, Seed: s.Seed ^ 0xF1EE7A,
	})
	if err != nil {
		return nil, err
	}
	bgB, err := trace.GenerateZipf(trace.ZipfConfig{
		Flows: s.Flows / 4, TotalPackets: s.Packets / 4, Seed: s.Seed ^ 0xF1EE7B,
	})
	if err != nil {
		return nil, err
	}
	// Each bot must send enough packets to saturate the meter's
	// FlowRegulator and land in the WSAF — the fleet tier only sees
	// flows the meters actually track.
	const bots = 2000
	attack, truth, err := trace.GenerateSpoofedDDoS(trace.SpoofedDDoSConfig{
		Sources: bots, PacketsPerSource: 48, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	siteNames := []string{"edge-1", "edge-2"}
	siteTraces := map[string]*trace.Trace{
		"edge-1": trace.Merge(bgA, attack),
		"edge-2": bgB,
	}

	ddos, err := detect.NewDDoSVictimDetector(bots / 4)
	if err != nil {
		return nil, err
	}
	agg, err := fleet.New(fleet.Config{Detectors: []*detect.StreamDetector{ddos}})
	if err != nil {
		return nil, err
	}
	coll, err := export.NewCollector("127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	coll.AddHook(agg.Ingest)

	// Each site meters its slice and exports cumulative snapshots at
	// four epoch cuts, like `instameasure -epoch N -export -site`.
	const epochs = 4
	for _, site := range siteNames {
		tr := siteTraces[site]
		eng, err := core.New(core.Config{
			SketchMemoryBytes: 32 << 10, WSAFEntries: 1 << 18, Seed: s.Seed,
		})
		if err != nil {
			coll.Close()
			return nil, err
		}
		exp, err := export.Dial(coll.Addr())
		if err != nil {
			coll.Close()
			return nil, err
		}
		if err := exp.WithSite(site); err != nil {
			coll.Close()
			return nil, err
		}
		cut := (len(tr.Packets) + epochs - 1) / epochs
		for e := 0; e < epochs; e++ {
			lo, hi := e*cut, (e+1)*cut
			if hi > len(tr.Packets) {
				hi = len(tr.Packets)
			}
			for i := lo; i < hi; i++ {
				eng.Process(tr.Packets[i])
			}
			snap := eng.Snapshot()
			records := make([]export.Record, len(snap))
			for i, entry := range snap {
				records[i] = export.FromEntry(entry)
			}
			if err := exp.Export(export.Batch{Epoch: int64(e + 1), Records: records}); err != nil {
				exp.Close()
				coll.Close()
				return nil, err
			}
		}
		if err := exp.Close(); err != nil {
			coll.Close()
			return nil, err
		}
	}
	// Export returns once the frame is written; the collector may still
	// be mid-read, and Close interrupts in-flight reads rather than
	// draining them. Wait until every batch has been folded in.
	want := uint64(len(siteNames) * epochs)
	for deadline := time.Now().Add(10 * time.Second); agg.Stats().Batches < want && time.Now().Before(deadline); {
		time.Sleep(2 * time.Millisecond)
	}
	if err := coll.Close(); err != nil {
		return nil, err
	}

	// Oracle union: both sites' ground truth merged.
	union := trace.Merge(siteTraces["edge-1"], siteTraces["edge-2"])
	const k = 10
	oracle := union.TopTruth(k, func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) })
	got := agg.TopK(k, false)
	inOracle := make(map[packet.FlowKey]bool, len(oracle))
	for _, key := range oracle {
		inOracle[key] = true
	}
	overlap := 0
	for _, fr := range got {
		if inOracle[fr.Key] {
			overlap++
		}
	}

	// Detector scoring: the flood's victim is the single positive.
	alerts := agg.Alerts(0, 0)
	tp, fp := 0, 0
	for _, al := range alerts {
		if al.Host == truth.Host.String() {
			tp++
		} else {
			fp++
		}
	}
	precision, recall := 0.0, 0.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp > 0 {
		recall = 1.0
	}

	rep := &Report{
		ID:     "Ext.fleet",
		Title:  "Fleet mode: 2-site aggregation + online DDoS detection",
		Header: []string{"site", "batches", "records", "flows", "pkts"},
	}
	for _, st := range agg.Sites() {
		rep.AddRow(st.Site, fmt.Sprintf("%d", st.Batches), fmt.Sprintf("%d", st.Records),
			fmt.Sprintf("%d", st.Flows), fmt.Sprintf("%.0f", st.Pkts))
	}
	stats := agg.Stats()
	rep.AddNote("network view: %d flows across %d sites; top-%d overlap with oracle union %d/%d",
		stats.Flows, stats.Sites, k, overlap, k)
	rep.AddNote("ddos detector (>=%d distinct sources): %d alert(s) on %d-bot flood at %s; precision %.2f, recall %.2f",
		bots/2, len(alerts), bots, truth.Host, precision, recall)
	rep.AddNote("hysteresis: a sustained flood across %d epochs must alert exactly once (got %d)",
		epochs, tp)
	rep.SetMetric("fleet_topk_overlap", float64(overlap)/float64(k))
	rep.SetMetric("fleet_precision", precision)
	rep.SetMetric("fleet_recall", recall)
	rep.SetMetric("fleet_alerts", float64(len(alerts)))
	return rep, nil
}
