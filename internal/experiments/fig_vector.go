package experiments

import (
	"fmt"
	"math"

	"instameasure/internal/flowhash"
	"instameasure/internal/flowreg"
	"instameasure/internal/packet"
	"instameasure/internal/rcc"
	"instameasure/internal/trace"
)

// vectorSweep lists the total virtual-vector sizes Fig. 8 sweeps. For RCC
// the whole budget goes to one layer; for FlowRegulator it is split evenly
// across the two layers (the paper compares at equal total size).
var vectorSweep = []int{8, 16, 32, 64}

// measureRetention empirically measures the mean number of packets a
// single flow is retained for between passthroughs — feeding one flow
// through a dedicated sketch and counting packets per emission.
func measureRetention(process func(h uint64) bool, seed uint64) float64 {
	const packets = 200_000
	h := flowhash.Mix64(seed + 99)
	var emissions int
	for i := 0; i < packets; i++ {
		if process(h) {
			emissions++
		}
	}
	if emissions == 0 {
		return float64(packets)
	}
	return float64(packets) / float64(emissions)
}

// Fig8aRetention reproduces Fig. 8(a): per-flow retention capacity vs
// virtual vector size. RCC grows additively; FlowRegulator multiplicatively.
func Fig8aRetention(s Scale) (*Report, error) {
	rep := &Report{
		ID:     "Fig.8a",
		Title:  "Retention capacity vs virtual vector size (single flow)",
		Header: []string{"total vv bits", "RCC pkts/pass", "FR pkts/pass", "FR gain"},
	}
	for _, vv := range vectorSweep {
		single, err := rcc.New(rcc.Config{MemoryBytes: 4096, VectorBits: vv, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		rccRet := measureRetention(func(h uint64) bool {
			_, sat := single.Encode(h)
			return sat
		}, s.Seed)

		reg, err := flowreg.New(flowreg.Config{Layer: rcc.Config{
			MemoryBytes: 4096, VectorBits: vv / 2, Seed: s.Seed,
		}})
		if err != nil {
			return nil, err
		}
		frRet := measureRetention(func(h uint64) bool {
			_, ok := reg.Process(h, 100)
			return ok
		}, s.Seed)

		rep.AddRow(
			fmt.Sprintf("%d", vv),
			fmt.Sprintf("%.1f", rccRet),
			fmt.Sprintf("%.1f", frRet),
			fmt.Sprintf("%.1fx", frRet/rccRet),
		)
	}
	rep.AddNote("FR splits the vv budget across two layers (e.g. 16 = 8+8)")
	rep.AddNote("paper: RCC reaches only 77 pkts even at 64 bits; FR ~100 pkts at 16 bits")
	return rep, nil
}

// Fig8bSaturationFrequency reproduces Fig. 8(b): how often a single flow's
// sketch saturates (passes through to the WSAF) per packet — the inverse
// of retention capacity. Lower is better for the WSAF.
func Fig8bSaturationFrequency(s Scale) (*Report, error) {
	rep := &Report{
		ID:     "Fig.8b",
		Title:  "Saturation (passthrough) frequency vs virtual vector size",
		Header: []string{"total vv bits", "RCC sat/pkt", "FR sat/pkt"},
	}
	for _, vv := range vectorSweep {
		single, err := rcc.New(rcc.Config{MemoryBytes: 4096, VectorBits: vv, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		rccRet := measureRetention(func(h uint64) bool {
			_, sat := single.Encode(h)
			return sat
		}, s.Seed)

		reg, err := flowreg.New(flowreg.Config{Layer: rcc.Config{
			MemoryBytes: 4096, VectorBits: vv / 2, Seed: s.Seed,
		}})
		if err != nil {
			return nil, err
		}
		frRet := measureRetention(func(h uint64) bool {
			_, ok := reg.Process(h, 100)
			return ok
		}, s.Seed)

		rep.AddRow(
			fmt.Sprintf("%d", vv),
			fmt.Sprintf("%.5f", 1/rccRet),
			fmt.Sprintf("%.5f", 1/frRet),
		)
	}
	rep.AddNote("paper: only 64-bit RCC approaches FR, and 64-bit confinement costs 8 memory accesses per packet")
	return rep, nil
}

// Fig8cAccuracy reproduces Fig. 8(c): estimation accuracy vs vector size.
// The two-layer design pays a small accuracy penalty versus single-layer
// RCC, largest at tiny (8 = 4+4 bit) vectors.
func Fig8cAccuracy(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "Fig.8c",
		Title:  "Estimation accuracy vs virtual vector size (5000+ pkt flows)",
		Header: []string{"total vv bits", "RCC mean err", "FR mean err"},
	}
	for _, vv := range vectorSweep {
		rccErr, err := runRCCAccuracy(tr, vv, s.Seed)
		if err != nil {
			return nil, err
		}
		frErr, err := runFRAccuracy(tr, vv/2, s.Seed)
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("%d", vv), pct2(rccErr), pct2(frErr))
	}
	rep.AddNote("both sketches get 128 KB total memory; errors over flows with 5000+ packets (well above every retention capacity in the sweep)")
	rep.AddNote("paper: FR slightly worse than RCC, noticeably so only at 8 (4+4) bits")
	return rep, nil
}

func runRCCAccuracy(tr *trace.Trace, vv int, seed uint64) (float64, error) {
	c, err := rcc.New(rcc.Config{MemoryBytes: 128 << 10, VectorBits: vv, Seed: seed})
	if err != nil {
		return 0, err
	}
	est := make(map[packet.FlowKey]float64)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if z, sat := c.Encode(p.Key.Hash64(seed)); sat {
			est[p.Key] += c.Decode(z)
		}
	}
	var sum float64
	var n int
	tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
		if ft.Pkts < 5000 {
			return
		}
		e := est[k] + c.EstimateResidual(k.Hash64(seed))
		sum += math.Abs(e-float64(ft.Pkts)) / float64(ft.Pkts)
		n++
	})
	if n == 0 {
		return 0, fmt.Errorf("no 5000+ packet flows at this scale")
	}
	return sum / float64(n), nil
}

func runFRAccuracy(tr *trace.Trace, layerVV int, seed uint64) (float64, error) {
	reg, err := flowreg.New(flowreg.Config{Layer: rcc.Config{
		MemoryBytes: 32 << 10, VectorBits: layerVV, Seed: seed,
	}})
	if err != nil {
		return 0, err
	}
	est := make(map[packet.FlowKey]float64)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if em, ok := reg.Process(p.Key.Hash64(seed), int(p.Len)); ok {
			est[p.Key] += em.EstPkts
		}
	}
	var sum float64
	var n int
	tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
		if ft.Pkts < 5000 {
			return
		}
		e := est[k] + reg.EstimateResidual(k.Hash64(seed))
		sum += math.Abs(e-float64(ft.Pkts)) / float64(ft.Pkts)
		n++
	})
	if n == 0 {
		return 0, fmt.Errorf("no 5000+ packet flows at this scale")
	}
	return sum / float64(n), nil
}
