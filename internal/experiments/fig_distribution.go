package experiments

import (
	"fmt"

	"instameasure/internal/packet"
	"instameasure/internal/stats"
	"instameasure/internal/trace"
)

// Fig6Distributions reproduces Fig. 6: the flow-size distributions of the
// two datasets. Both must exhibit the Zipf-like shape (mice dominate the
// flow count; elephants dominate the packet count) the whole design
// depends on.
func Fig6Distributions(s Scale) (*Report, error) {
	caida, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}
	campus, err := campusTrace(s)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "Fig.6",
		Title:  "Flow-size distribution of the CAIDA-like and campus-like datasets",
		Header: []string{"dataset", "flow size bucket", "flows", "share"},
	}
	for _, ds := range []struct {
		name string
		tr   *trace.Trace
	}{{"caida-like", caida}, {"campus-like", campus}} {
		h := stats.NewLogHistogram(10)
		var udp, total int
		ds.tr.EachTruth(func(k packet.FlowKey, ft *trace.FlowTruth) {
			h.Add(float64(ft.Pkts))
			total++
			if k.Proto == packet.ProtoUDP {
				udp++
			}
		})
		for _, b := range h.Buckets() {
			rep.AddRow(
				ds.name,
				fmt.Sprintf("[%.0f, %.0f)", b.Lo, b.Hi),
				fmt.Sprintf("%d", b.Count),
				pct2(float64(b.Count)/float64(h.Samples())),
			)
		}
		rep.AddNote("%s: %d packets, %d flows, %.1f%% UDP flows",
			ds.name, len(ds.tr.Packets), total, float64(udp)/float64(total)*100)
	}
	rep.AddNote("paper: both datasets are Zipf-like — 1-10 packet mice are the large majority")
	return rep, nil
}
