package experiments

import (
	"fmt"
	"math"

	"instameasure/internal/baseline/csm"
	"instameasure/internal/packet"
	"instameasure/internal/trace"
)

// CSMComparison reproduces the Section V.C comparison: CSM (randomized
// counter sharing) given roughly twice InstaMeasure's sketch memory still
// estimates Top-K flows far less accurately, and its decoding touches l
// counters per flow — the offline cost InstaMeasure's online decoding
// avoids. The paper measured 2.4% error for CSM's top-100 and 8.53% for
// its top-1000; InstaMeasure's corresponding errors were sub-1%.
func CSMComparison(s Scale) (*Report, error) {
	tr, err := caidaTrace(s)
	if err != nil {
		return nil, err
	}

	// InstaMeasure with a 128 KB L1 (512 KB total sketch).
	eng, err := runEngine(tr, 128<<10, s.Seed)
	if err != nil {
		return nil, err
	}
	// CSM with 2× InstaMeasure's total sketch memory.
	sketch, err := csm.New(csm.Config{
		MemoryBytes:     2 * eng.SketchMemoryBytes(),
		CountersPerFlow: 50,
		Seed:            s.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i := range tr.Packets {
		sketch.Encode(tr.Packets[i].Key.Hash64(s.Seed))
	}

	rep := &Report{
		ID:     "Sec.V-C",
		Title:  "Comparison with CSM (randomized counter sharing)",
		Header: []string{"system", "memory", "top-100 err", "top-1000 err", "decode cost/flow"},
	}

	topErr := func(k int, est func(packet.FlowKey) float64) float64 {
		keys := tr.TopTruth(k, func(ft *trace.FlowTruth) float64 { return float64(ft.Pkts) })
		var sum float64
		var n int
		for _, key := range keys {
			truth := float64(tr.Truth(key).Pkts)
			if truth == 0 {
				continue
			}
			sum += math.Abs(est(key)-truth) / truth
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	imEst := func(k packet.FlowKey) float64 {
		pkts, _ := eng.Estimate(k)
		return pkts
	}
	csmEst := func(k packet.FlowKey) float64 {
		return sketch.Estimate(k.Hash64(s.Seed))
	}

	rep.AddRow(
		"InstaMeasure",
		fmt.Sprintf("%dKB sketch + WSAF", eng.SketchMemoryBytes()>>10),
		pct2(topErr(100, imEst)),
		pct2(topErr(1000, imEst)),
		"2 accesses (online)",
	)
	rep.AddRow(
		"CSM",
		fmt.Sprintf("%dKB counters", sketch.MemoryBytes()>>10),
		pct2(topErr(100, csmEst)),
		pct2(topErr(1000, csmEst)),
		fmt.Sprintf("%d accesses (offline)", sketch.DecodeAccesses()),
	)
	rep.AddNote("CSM gets 2x InstaMeasure's sketch memory, as in the paper's 60MB-vs-30MB setup")
	rep.AddNote("paper: CSM 2.4%% (top-100) / 8.53%% (top-1000); full-trace CSM decoding did not terminate")
	return rep, nil
}
