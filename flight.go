package instameasure

import (
	"io"
	"net/http"
	"time"

	"instameasure/internal/flight"
)

// Flight-recorder aliases: the dump vocabulary of /debug/flight. The
// recorder itself is always on — every Meter, Cluster, Exporter,
// Collector, and FlowStore records into the process-wide recorder, and
// the cost is a few atomic stores on sampled or per-epoch paths.
type (
	// FlightDump is a point-in-time capture of the flight recorder: raw
	// events, per-epoch timelines, and SLO state. It round-trips through
	// JSON (wsafdump -flight re-renders a saved dump).
	FlightDump = flight.Dump
	// FlightEvent is one recorded event.
	FlightEvent = flight.Event
	// FlightEpoch is one epoch's reconstructed cut→…→commit timeline.
	FlightEpoch = flight.EpochTimeline
	// FlightSLO is the detection-delay SLO tracker's state.
	FlightSLO = flight.SLOState
)

// FlightSnapshot captures the process-wide flight recorder: every event
// still held in the rings, the per-epoch timelines reconstructed from
// them, and the SLO tracker's state.
func FlightSnapshot() FlightDump {
	return flight.Snapshot(flight.Default())
}

// WriteFlightTimeline renders a dump as the human-oriented text timeline
// (the ?fmt=text view of /debug/flight).
func WriteFlightTimeline(w io.Writer, d FlightDump) error {
	return flight.WriteTimeline(w, d)
}

// FlightHandler returns the /debug/flight handler (JSON dump, or text
// with ?fmt=text) for embedding into an existing HTTP server;
// Telemetry.Serve mounts it automatically.
func FlightHandler() http.Handler {
	return flight.NewHandler(flight.Default())
}

// SetDetectionDelayBudget arms the SLO tracker: the p99 cut→commit
// latency of recent epochs is compared against d, and the ratio is
// exposed as the instameasure_slo_burn gauge (>1 means the paper's
// "instant detection" promise, as configured, is being blown). 0
// disables burn computation.
func SetDetectionDelayBudget(d time.Duration) {
	flight.Default().SetBudget(d)
}

// MarkEpochCut records the epoch-cut event that opens epoch's
// detection-delay interval: call it at the moment the epoch boundary is
// decided, before exporting or committing the snapshot. The flow count
// recorded is the WSAF population at the cut.
func (m *Meter) MarkEpochCut(epoch int64) {
	m.eng.Flight().Event(flight.StageCut, epoch, uint32(m.eng.Table().Len()), 0, 0)
}

// MarkEpochCut records the epoch-cut event for the cluster, with the
// WSAF population summed across workers.
func (c *Cluster) MarkEpochCut(epoch int64) {
	var flows int
	for _, eng := range c.sys.Engines() {
		flows += eng.Table().Len()
	}
	c.sys.Flight().Control().Event(flight.StageCut, epoch, uint32(flows), 0, 0)
}

// Saturated is the cluster's readiness probe: non-nil while any worker
// queue sits at or above 90% of capacity (sustained saturation adds
// queueing delay the per-stage timers cannot see).
func (c *Cluster) Saturated() error { return c.sys.Saturated() }

// Connected reports whether the exporter currently holds a live
// connection to its collector — false between a torn-down send and the
// successful redial. Use as a /readyz probe via RegisterHealth.
func (e *Exporter) Connected() bool { return e.e.Connected() }

// Listening reports whether the collector still accepts connections —
// false once Close begins. Use as a /readyz probe via RegisterHealth.
func (c *Collector) Listening() bool { return c.c.Listening() }

// Healthy is the store's readiness probe: nil while appends can succeed,
// an error once the store is closed or wedged by a failed write.
func (f *FlowStore) Healthy() error { return f.st.Healthy() }
