package instameasure

import (
	"fmt"

	"instameasure/internal/apps"
	"instameasure/internal/detect"
	"instameasure/internal/wsaf"
)

// SpreadConfig parameterizes the spread-based anomaly detectors
// (SuperSpreader and DDoS victim detection).
type SpreadConfig struct {
	// Threshold is the distinct-peer count that flags an endpoint.
	Threshold float64
	// Precision is the per-endpoint HyperLogLog precision (default 10:
	// 1 KB per endpoint, ~3% error).
	Precision int
	// MaxTracked caps concurrently tracked endpoints (default 4096).
	MaxTracked int
	// Seed drives peer hashing.
	Seed uint64
}

// SpreadReport is one flagged endpoint: its IPv4 address (or folded IPv6),
// estimated distinct peers, and first-flag timestamp.
type SpreadReport = apps.SpreadReport

// SuperSpreaderDetector flags sources contacting many distinct
// destinations — scan and worm behaviour. Feed it the same packet stream
// as the Meter.
type SuperSpreaderDetector struct {
	d *apps.SuperSpreaderDetector
}

// NewSuperSpreaderDetector builds a detector from cfg.
func NewSuperSpreaderDetector(cfg SpreadConfig) (*SuperSpreaderDetector, error) {
	d, err := apps.NewSuperSpreaderDetector(apps.SpreadConfig{
		Threshold:  cfg.Threshold,
		Precision:  cfg.Precision,
		MaxTracked: cfg.MaxTracked,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("instameasure: %w", err)
	}
	return &SuperSpreaderDetector{d: d}, nil
}

// Observe records one packet.
func (s *SuperSpreaderDetector) Observe(p Packet) { s.d.Observe(p) }

// SuperSpreaders returns flagged sources, largest spread first.
func (s *SuperSpreaderDetector) SuperSpreaders() []SpreadReport {
	return s.d.SuperSpreaders()
}

// Estimate returns the current distinct-destination estimate for a source
// address.
func (s *SuperSpreaderDetector) Estimate(src uint32) float64 {
	return s.d.Estimate(src)
}

// DDoSDetector flags destinations contacted by many distinct sources —
// volumetric attack victims.
type DDoSDetector struct {
	d *apps.DDoSDetector
}

// NewDDoSDetector builds a detector from cfg.
func NewDDoSDetector(cfg SpreadConfig) (*DDoSDetector, error) {
	d, err := apps.NewDDoSDetector(apps.SpreadConfig{
		Threshold:  cfg.Threshold,
		Precision:  cfg.Precision,
		MaxTracked: cfg.MaxTracked,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("instameasure: %w", err)
	}
	return &DDoSDetector{d: d}, nil
}

// Observe records one packet.
func (d *DDoSDetector) Observe(p Packet) { d.d.Observe(p) }

// Victims returns flagged destinations, largest spread first.
func (d *DDoSDetector) Victims() []SpreadReport { return d.d.Victims() }

// Estimate returns the current distinct-source estimate for a destination
// address.
func (d *DDoSDetector) Estimate(dst uint32) float64 { return d.d.Estimate(dst) }

// FlowEntropy returns the Shannon entropy (bits) of the meter's current
// flow-size distribution. Sudden drops indicate traffic concentration
// (DDoS, elephant bursts); rises indicate dispersion (scans).
func (m *Meter) FlowEntropy() float64 {
	return apps.FlowSizeEntropy(m.eng.Snapshot())
}

// NormalizedFlowEntropy scales FlowEntropy into [0,1].
func (m *Meter) NormalizedFlowEntropy() float64 {
	return apps.NormalizedFlowSizeEntropy(m.eng.Snapshot())
}

// PersistConfig parameterizes long-term persistence tracking.
type PersistConfig struct {
	// WindowEpochs is the sliding window length in epochs (max 64,
	// default 16).
	WindowEpochs int
	// MinEpochs is the presence count that makes a flow persistent
	// (default 3/4 of the window).
	MinEpochs int
}

// PersistentFlow is one long-lived flow report.
type PersistentFlow = detect.PersistentFlow

// PersistenceTracker finds flows that stay active across many measurement
// epochs — beacons, tunnels, covert channels — using the WSAF's long-term
// retention. Feed it Meter.Flows() at every epoch boundary.
type PersistenceTracker struct {
	t *detect.PersistenceTracker
}

// NewPersistenceTracker builds a tracker from cfg.
func NewPersistenceTracker(cfg PersistConfig) (*PersistenceTracker, error) {
	t, err := detect.NewPersistenceTracker(detect.PersistConfig{
		WindowEpochs: cfg.WindowEpochs,
		MinEpochs:    cfg.MinEpochs,
	})
	if err != nil {
		return nil, fmt.Errorf("instameasure: %w", err)
	}
	return &PersistenceTracker{t: t}, nil
}

// ObserveEpoch records one epoch's flow table (Meter.Flows()).
func (p *PersistenceTracker) ObserveEpoch(flows []FlowRecord) {
	entries := make([]wsaf.Entry, len(flows))
	for i, f := range flows {
		entries[i] = wsaf.Entry{Key: f.Key, Pkts: f.Pkts, Bytes: f.Bytes}
	}
	p.t.ObserveEpoch(entries)
}

// Persistent returns flows present in at least MinEpochs of the window,
// most persistent first.
func (p *PersistenceTracker) Persistent() []PersistentFlow {
	return p.t.Persistent()
}

// Presence returns how many of the window's epochs key appeared in.
func (p *PersistenceTracker) Presence(key FlowKey) int {
	return p.t.Presence(key)
}

// TrafficSummary describes the measured traffic mix. The WSAF holds the
// elephants explicitly; the mice side — the flows FlowRegulator retained —
// is derived by subtraction using the distinct-flow cardinality estimate,
// giving the flow-size-distribution headline numbers (how many mice, how
// small) without per-mouse state.
type TrafficSummary struct {
	// TotalPackets and TotalBytes are exact stream totals.
	TotalPackets uint64
	TotalBytes   uint64
	// DistinctFlowsEst estimates all distinct flows seen (±~2%).
	DistinctFlowsEst float64
	// ElephantFlows / ElephantPkts / ElephantBytes summarize the WSAF.
	ElephantFlows int
	ElephantPkts  float64
	ElephantBytes float64
	// MiceFlowsEst / MicePktsEst / MeanMouseSizeEst describe the retained
	// remainder.
	MiceFlowsEst     float64
	MicePktsEst      float64
	MeanMouseSizeEst float64
}

// TrafficSummary computes the current traffic mix.
func (m *Meter) TrafficSummary() TrafficSummary {
	st := m.Stats()
	var elephantPkts, elephantBytes float64
	flows := m.Flows()
	for _, f := range flows {
		elephantPkts += f.Pkts
		elephantBytes += f.Bytes
	}
	sum := TrafficSummary{
		TotalPackets:     st.Packets,
		TotalBytes:       st.Bytes,
		DistinctFlowsEst: st.DistinctFlowsEst,
		ElephantFlows:    len(flows),
		ElephantPkts:     elephantPkts,
		ElephantBytes:    elephantBytes,
	}
	sum.MiceFlowsEst = sum.DistinctFlowsEst - float64(sum.ElephantFlows)
	if sum.MiceFlowsEst < 0 {
		sum.MiceFlowsEst = 0
	}
	sum.MicePktsEst = float64(st.Packets) - elephantPkts
	if sum.MicePktsEst < 0 {
		sum.MicePktsEst = 0
	}
	if sum.MiceFlowsEst > 0 {
		sum.MeanMouseSizeEst = sum.MicePktsEst / sum.MiceFlowsEst
	}
	return sum
}
