package instameasure

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestPublicSuperSpreaderDetector(t *testing.T) {
	d, err := NewSuperSpreaderDetector(SpreadConfig{Threshold: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const scanner = 0x0A0A0A0A
	for i := 0; i < 1000; i++ {
		d.Observe(Packet{
			Key: V4Key(scanner, uint32(i)+1, 1000, 80, ProtoTCP),
			Len: 60,
			TS:  int64(i),
		})
	}
	got := d.SuperSpreaders()
	if len(got) != 1 || got[0].Addr != scanner {
		t.Fatalf("spreaders = %+v", got)
	}
	if est := d.Estimate(scanner); math.Abs(est-1000)/1000 > 0.15 {
		t.Errorf("estimate %.0f, want ≈1000", est)
	}
	if _, err := NewSuperSpreaderDetector(SpreadConfig{}); err == nil {
		t.Error("zero threshold must fail")
	}
}

func TestPublicDDoSDetector(t *testing.T) {
	d, err := NewDDoSDetector(SpreadConfig{Threshold: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const victim = 0x08080404
	for i := 0; i < 800; i++ {
		d.Observe(Packet{
			Key: V4Key(uint32(i)+1, victim, 1000, 53, ProtoUDP),
			Len: 500,
			TS:  int64(i),
		})
	}
	got := d.Victims()
	if len(got) != 1 || got[0].Addr != victim {
		t.Fatalf("victims = %+v", got)
	}
	if est := d.Estimate(victim); math.Abs(est-800)/800 > 0.15 {
		t.Errorf("estimate %.0f, want ≈800", est)
	}
	if _, err := NewDDoSDetector(SpreadConfig{Threshold: -1}); err == nil {
		t.Error("negative threshold must fail")
	}
}

func TestMeterFlowEntropy(t *testing.T) {
	m := testMeter(t)
	if m.FlowEntropy() != 0 || m.NormalizedFlowEntropy() != 0 {
		t.Error("empty meter entropy must be 0")
	}
	tr := testTrace(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	h := m.FlowEntropy()
	n := m.NormalizedFlowEntropy()
	if h <= 0 {
		t.Errorf("entropy = %v, want positive", h)
	}
	if n <= 0 || n > 1 {
		t.Errorf("normalized entropy = %v outside (0,1]", n)
	}
}

func TestPublicCollectorExporter(t *testing.T) {
	var mu sync.Mutex
	var epochs []int64
	coll, err := NewCollector("127.0.0.1:0", func(epoch int64, flows []FlowRecord) {
		mu.Lock()
		epochs = append(epochs, epoch)
		mu.Unlock()
		if len(flows) == 0 {
			t.Error("batch hook received no flows")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	tr := testTrace(t)
	m := testMeter(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}

	exp, err := DialCollector(coll.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if err := exp.ExportMeter(m, 7); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, _ := coll.Stats(); b >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	batches, records := coll.Stats()
	if batches != 1 {
		t.Fatalf("batches = %d, want 1", batches)
	}
	if int(records) != m.Stats().ActiveFlows {
		t.Errorf("collector records = %d, meter flows = %d", records, m.Stats().ActiveFlows)
	}
	if len(coll.Flows()) != m.Stats().ActiveFlows {
		t.Errorf("collector flows = %d, want %d", len(coll.Flows()), m.Stats().ActiveFlows)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 1 || epochs[0] != 7 {
		t.Errorf("epochs = %v, want [7]", epochs)
	}
}

func TestDialCollectorRefused(t *testing.T) {
	if _, err := DialCollector("127.0.0.1:1"); err == nil {
		t.Error("dialing a dead port must fail")
	}
}

func TestPublicPersistenceTracker(t *testing.T) {
	p, err := NewPersistenceTracker(PersistConfig{WindowEpochs: 4, MinEpochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	beacon := V4Key(1, 2, 443, 443, ProtoTCP)
	transientBase := uint32(100)
	for epoch := 0; epoch < 4; epoch++ {
		flows := []FlowRecord{{Key: beacon, Pkts: 10}}
		flows = append(flows, FlowRecord{
			Key:  V4Key(transientBase+uint32(epoch), 9, 1, 1, ProtoUDP),
			Pkts: 500,
		})
		p.ObserveEpoch(flows)
	}
	got := p.Persistent()
	if len(got) != 1 || got[0].Key != beacon || got[0].Epochs != 4 {
		t.Fatalf("persistent = %+v, want the beacon in all 4 epochs", got)
	}
	if p.Presence(beacon) != 4 {
		t.Errorf("presence = %d", p.Presence(beacon))
	}
	if _, err := NewPersistenceTracker(PersistConfig{WindowEpochs: 99}); err == nil {
		t.Error("oversized window must fail")
	}
}

func TestTrafficSummary(t *testing.T) {
	tr := testTrace(t) // 10k flows, Zipf
	m := testMeter(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum := m.TrafficSummary()
	if sum.TotalPackets != uint64(len(tr.Packets)) {
		t.Errorf("total packets = %d", sum.TotalPackets)
	}
	if sum.ElephantFlows == 0 || sum.ElephantPkts <= 0 {
		t.Error("no elephants in a Zipf trace")
	}
	// Zipf: mice vastly outnumber elephants.
	if sum.MiceFlowsEst < float64(sum.ElephantFlows)*5 {
		t.Errorf("mice flows %.0f not ≫ elephant flows %d", sum.MiceFlowsEst, sum.ElephantFlows)
	}
	// Mean mouse size must be small (1-10 packet mice dominate).
	if sum.MeanMouseSizeEst <= 0 || sum.MeanMouseSizeEst > 50 {
		t.Errorf("mean mouse size %.1f implausible", sum.MeanMouseSizeEst)
	}
	// Accounting identity within estimate error.
	recon := sum.ElephantPkts + sum.MicePktsEst
	if math.Abs(recon-float64(sum.TotalPackets))/float64(sum.TotalPackets) > 0.05 {
		t.Errorf("packet accounting off: %v vs %d", recon, sum.TotalPackets)
	}
}
