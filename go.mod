module instameasure

go 1.22
