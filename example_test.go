package instameasure_test

import (
	"bytes"
	"fmt"

	"instameasure"
)

// ExampleNew measures a small deterministic workload and reports totals.
func ExampleNew() {
	tr, err := instameasure.GenerateZipfTrace(instameasure.ZipfTraceConfig{
		Flows: 1_000, TotalPackets: 50_000, Seed: 7,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	meter, err := instameasure.New(instameasure.Config{Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}
	n, err := meter.ProcessSource(tr.Source())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("packets: %d\n", n)
	fmt.Printf("flows in trace: %d\n", tr.Flows())
	// Output:
	// packets: 50000
	// flows in trace: 1000
}

// ExampleMeter_OnHeavyHitter detects an injected high-rate flow inline.
func ExampleMeter_OnHeavyHitter() {
	attack := instameasure.V4Key(0xC0A80001, 0x08080808, 4444, 53, instameasure.ProtoUDP)
	tr, err := instameasure.InjectFlow(nil, attack, 100_000, 0, 1e9, 1000, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	meter, err := instameasure.New(instameasure.Config{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := meter.OnHeavyHitter(5_000, 0, func(ev instameasure.HeavyHitterEvent) {
		fmt.Printf("heavy hitter: %v\n", ev.Key)
	}); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := meter.ProcessSource(tr.Source()); err != nil {
		fmt.Println(err)
		return
	}
	// Output:
	// heavy hitter: udp 192.168.0.1:4444->8.8.8.8:53
}

// ExampleMeter_ExportSnapshot archives a flow table and reads it back.
func ExampleMeter_ExportSnapshot() {
	tr, err := instameasure.GenerateZipfTrace(instameasure.ZipfTraceConfig{
		Flows: 500, TotalPackets: 30_000, Seed: 9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	meter, err := instameasure.New(instameasure.Config{Seed: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := meter.ProcessSource(tr.Source()); err != nil {
		fmt.Println(err)
		return
	}

	var buf bytes.Buffer
	if err := meter.ExportSnapshot(&buf, 1); err != nil {
		fmt.Println(err)
		return
	}
	flows, epoch, err := instameasure.ReadSnapshot(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("epoch %d restored %d flows (matches live table: %v)\n",
		epoch, len(flows), len(flows) == meter.Stats().ActiveFlows)
	// Output:
	// epoch 1 restored 93 flows (matches live table: true)
}
