package instameasure

import (
	"fmt"
	"net/http"

	"instameasure/internal/export"
	"instameasure/internal/flight"
	"instameasure/internal/store"
)

// Store-facing aliases: the query vocabulary of the epoch store. See the
// README's "Querying flow history" section.
type (
	// EpochWindow selects an inclusive epoch range; 0 on either end means
	// open (From: 0 = the beginning of history, To: 0 = the latest epoch).
	EpochWindow = store.Window
	// FlowDelta is one flow's traffic within a window.
	FlowDelta = store.FlowDelta
	// TimelinePoint is one epoch of a single flow's history.
	TimelinePoint = store.TimelinePoint
	// FlowChange is one flow's delta between two windows.
	FlowChange = store.FlowChange
	// FlowStoreStats summarizes a store's contents and activity.
	FlowStoreStats = store.StoreStats
	// StoreOptions parameterizes OpenFlowStore; the zero value is a sane
	// default (64 MB segments, no fsync, unlimited retention).
	StoreOptions = store.Options
)

// Fsync policies for StoreOptions.Sync.
const (
	// StoreSyncNone leaves flushing to the OS (default): a process crash
	// cannot corrupt the store, an OS crash can lose recent appends.
	StoreSyncNone = store.SyncNone
	// StoreSyncEach fsyncs after every append: an acknowledged epoch
	// survives power loss.
	StoreSyncEach = store.SyncEach
)

// FlowStore is a crash-safe, append-only history of epoch snapshots plus
// the query engine over it: per-flow timelines, windowed top-k, and
// heavy-changer detection. One store directory belongs to one writing
// process at a time; queries are safe from any goroutine while appends
// and background compaction run.
type FlowStore struct {
	st *store.Store
}

// OpenFlowStore opens (or creates) the store in dir. A torn tail left by
// a crash mid-append is truncated away — opening after a kill -9 recovers
// every fully written epoch.
func OpenFlowStore(dir string, opt StoreOptions) (*FlowStore, error) {
	st, err := store.Open(dir, opt)
	if err != nil {
		return nil, fmt.Errorf("instameasure: %w", err)
	}
	// Commits, compactions, and queries land in the flight recorder;
	// commits carry the epoch id that closes the cut→commit interval.
	st.SetFlight(flight.Default().Control())
	return &FlowStore{st: st}, nil
}

// Dir returns the store's directory.
func (f *FlowStore) Dir() string { return f.st.Dir() }

// Stats summarizes the store: segments, records, epoch range, appends,
// truncations, compactions.
func (f *FlowStore) Stats() FlowStoreStats { return f.st.Stats() }

// Epochs returns every epoch the store can answer for, ascending.
func (f *FlowStore) Epochs() []int64 { return f.st.Epochs() }

// TopK returns the k heaviest flows in the window by packets (or bytes).
// A window's traffic is the growth of each flow's cumulative counters
// between the window's edges; the zero window means all of history.
func (f *FlowStore) TopK(w EpochWindow, k int, byBytes bool) ([]FlowDelta, error) {
	return f.st.TopK(w, k, byBytes)
}

// Timeline returns key's per-epoch history inside the window.
func (f *FlowStore) Timeline(key FlowKey, w EpochWindow) ([]TimelinePoint, error) {
	return f.st.Timeline(key, w)
}

// TimelineByHash resolves a flow by its 64-bit id (FlowKey.Hash64 with
// seed 0 — the id the HTTP API prints) and returns its timeline plus the
// matched key.
func (f *FlowStore) TimelineByHash(id uint64) ([]TimelinePoint, FlowKey, error) {
	return f.st.TimelineByHash(id)
}

// HeavyChangers ranks flows by |traffic change| between two windows —
// the paper's heavy-changer question asked of stored history.
func (f *FlowStore) HeavyChangers(older, newer EpochWindow, k int, byBytes bool) ([]FlowChange, error) {
	return f.st.HeavyChangers(older, newer, k, byBytes)
}

// DefaultChangerWindows is the "what just changed" pair: the latest
// stored epoch against the one before it. ok is false with fewer than
// two epochs.
func (f *FlowStore) DefaultChangerWindows() (older, newer EpochWindow, ok bool) {
	return f.st.DefaultChangerWindows()
}

// EpochFlows returns the flow table stored for exactly that epoch, with
// the WSAF activity counters captured alongside it. ok is false if the
// epoch is not stored at per-epoch granularity (never written, retired by
// retention, or folded into a rollup by compaction).
func (f *FlowStore) EpochFlows(epoch int64) (flows []FlowRecord, activity WSAFActivity, ok bool, err error) {
	recs, stats, ok, err := f.st.EpochRecords(epoch)
	if err != nil || !ok {
		return nil, WSAFActivity{}, ok, err
	}
	flows = make([]FlowRecord, len(recs))
	for i, r := range recs {
		flows[i] = FlowRecord{Key: r.Key, Pkts: r.Pkts, Bytes: r.Bytes, FirstSeen: r.FirstSeen, LastUpdate: r.LastUpdate}
	}
	return flows, WSAFActivity{
		Updates: stats.Updates, Inserts: stats.Inserts,
		Expirations: stats.Expirations, Evictions: stats.Evictions, Drops: stats.Drops,
	}, true, nil
}

// Sync flushes the active segment to stable storage.
func (f *FlowStore) Sync() error { return f.st.Sync() }

// Instrument registers the store's metrics (appends, compactions, query
// latencies, size gauges) on t's registry.
func (f *FlowStore) Instrument(t *Telemetry) { f.st.Instrument(t.reg) }

// Handler returns the store's JSON query API (/flows/topk,
// /flows/timeline, /flows/changers, /flows/stats) as a single handler
// that dispatches on the request path, for mounting on any HTTP server.
// TelemetryServer.ServeFlows mounts it for you.
func (f *FlowStore) Handler() http.Handler { return store.NewQueryAPI(f.st) }

// Close seals the store: background maintenance stops, the active segment
// is flushed and closed. Queries and appends fail afterwards.
func (f *FlowStore) Close() error { return f.st.Close() }

// WithStore opens the store in dir with default options and attaches it
// as the meter's history sink: each CommitEpoch call appends the live
// snapshot. The meter owns nothing — close the returned store when done.
func (m *Meter) WithStore(dir string) (*FlowStore, error) {
	fs, err := OpenFlowStore(dir, StoreOptions{})
	if err != nil {
		return nil, err
	}
	m.store = fs
	return fs, nil
}

// AttachStore attaches an already-open store (pass nil to detach), for
// callers that need non-default StoreOptions.
func (m *Meter) AttachStore(fs *FlowStore) { m.store = fs }

// Store returns the attached store, or nil.
func (m *Meter) Store() *FlowStore { return m.store }

// CommitEpoch appends the meter's current flow table and WSAF activity to
// the attached store as epoch's snapshot. Counters are cumulative, so a
// committed epoch carries totals since start — the store's windowed
// queries difference them.
func (m *Meter) CommitEpoch(epoch int64) error {
	if m.store == nil {
		return fmt.Errorf("instameasure: no store attached (use WithStore)")
	}
	snap := m.eng.Snapshot()
	records := make([]export.Record, len(snap))
	for i, e := range snap {
		records[i] = export.FromEntry(e)
	}
	ts := m.eng.Table().Stats()
	err := m.store.st.Append(epoch, records, export.TableStats{
		Updates:     ts.Updates,
		Inserts:     ts.Inserts,
		Expirations: ts.Reclaims,
		Evictions:   ts.Evictions,
		Drops:       ts.Drops,
	})
	if err != nil {
		return fmt.Errorf("instameasure: %w", err)
	}
	return nil
}

// WithStore opens the store in dir with default options and attaches it
// as the cluster's history sink, exactly like Meter.WithStore.
func (c *Cluster) WithStore(dir string) (*FlowStore, error) {
	fs, err := OpenFlowStore(dir, StoreOptions{})
	if err != nil {
		return nil, err
	}
	c.store = fs
	return fs, nil
}

// AttachStore attaches an already-open store (pass nil to detach).
func (c *Cluster) AttachStore(fs *FlowStore) { c.store = fs }

// Store returns the attached store, or nil.
func (c *Cluster) Store() *FlowStore { return c.store }

// CommitEpoch appends the cluster's merged flow table (and activity
// summed across workers) to the attached store as epoch's snapshot.
func (c *Cluster) CommitEpoch(epoch int64) error {
	if c.store == nil {
		return fmt.Errorf("instameasure: no store attached (use WithStore)")
	}
	snap := c.sys.MergedSnapshot()
	records := make([]export.Record, len(snap))
	for i, e := range snap {
		records[i] = export.FromEntry(e)
	}
	var stats export.TableStats
	for _, eng := range c.sys.Engines() {
		ts := eng.Table().Stats()
		stats.Updates += ts.Updates
		stats.Inserts += ts.Inserts
		stats.Expirations += ts.Reclaims
		stats.Evictions += ts.Evictions
		stats.Drops += ts.Drops
	}
	if err := c.store.st.Append(epoch, records, stats); err != nil {
		return fmt.Errorf("instameasure: %w", err)
	}
	return nil
}

// WithStore attaches an open store as the collector's sink: every batch
// received from remote meters is appended under the batch's epoch (with
// no WSAF activity — batches don't carry it). Batches from multiple
// exporters tagged with the same epoch union in queries, later appends
// winning per flow. Pass nil to detach.
func (c *Collector) WithStore(fs *FlowStore) {
	if fs == nil {
		c.c.SetSink(nil)
		return
	}
	st := fs.st
	c.c.SetSink(func(b export.Batch) {
		st.Append(b.Epoch, b.Records, export.TableStats{}) //nolint:errcheck // sink is best-effort; store errors surface in its stats
	})
}
