// Command imvet runs instameasure's domain-specific static analyzers —
// hotalloc, hashonce, atomicfield, errclose, wallclock — over the module
// and prints vet-style file:line:col diagnostics to stderr, exiting
// non-zero if any invariant is violated.
//
// The analyzers are whole-program by design (hot-path annotations
// propagate through the cross-package call graph; atomic-field discipline
// spans packages), so any package pattern argument analyzes the entire
// enclosing module:
//
//	go run ./cmd/imvet ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"instameasure/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: imvet [-list] [packages]\n\nruns the module's invariant analyzers; any package pattern analyzes the whole module\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "imvet:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imvet:", err)
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(prog, analysis.Suite()...)
	wd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, rerr := filepath.Rel(wd, name); rerr == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "imvet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
