// Command imvet runs instameasure's domain-specific static analyzers —
// hotalloc, flightrec, hashonce, atomicfield, errclose, wallclock,
// locksafe, seqproto, wirebound — over the module and prints vet-style
// file:line:col diagnostics to stderr, exiting non-zero if any invariant
// is violated.
//
// The analyzers are whole-program by design (hot-path annotations
// propagate through the cross-package call graph; atomic-field discipline
// spans packages; lock scopes follow static calls), so any package
// pattern argument analyzes the entire enclosing module:
//
//	go run ./cmd/imvet ./...
//
// -json switches the diagnostic stream to NDJSON on stdout (one
// {"file","line","col","analyzer","message"} object per finding) for
// editor and CI integration; -v prints per-analyzer wall time and
// finding counts to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"instameasure/internal/analysis"
)

// jsonDiag is the NDJSON shape emitted under -json, one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as NDJSON on stdout instead of vet-style text on stderr")
	verbose := flag.Bool("v", false, "print per-analyzer wall time and finding counts to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: imvet [-list] [-json] [-v] [packages]\n\nruns the module's invariant analyzers; any package pattern analyzes the whole module\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "imvet:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imvet:", err)
		os.Exit(2)
	}

	diags, timings := analysis.RunAnalyzersTimed(prog, analysis.Suite()...)
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "imvet: %-12s %8.1fms  %d finding(s)\n",
				tm.Name, float64(tm.Elapsed.Microseconds())/1000, tm.Count)
		}
	}
	wd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, rerr := filepath.Rel(wd, name); rerr == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		if *asJSON {
			if err := enc.Encode(jsonDiag{
				File: name, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "imvet:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "imvet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
