// Command tracegen generates the synthetic workloads this reproduction
// substitutes for the paper's CAIDA and campus captures, and writes them
// as standard pcap files any capture tool can read.
//
// Usage:
//
//	tracegen -o caida.pcap -flows 100000 -packets 2000000
//	tracegen -o campus.pcap -kind diurnal -hours 113 -packets 2000000
//	tracegen -o attack.pcap -kind ddos -rate 100000 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"instameasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("o", "trace.pcap", "output pcap path")
		kind     = flag.String("kind", "zipf", "workload kind: zipf, diurnal, ddos")
		flows    = flag.Int("flows", 100_000, "zipf: number of flows")
		packets  = flag.Int("packets", 2_000_000, "number of packets")
		skew     = flag.Float64("skew", 1.0, "zipf: skew exponent")
		hours    = flag.Float64("hours", 113, "diurnal: simulated hours")
		rate     = flag.Float64("rate", 100_000, "ddos: attack packets per second")
		duration = flag.Duration("duration", 2*time.Second, "ddos: attack duration (trace time)")
		snapLen  = flag.Int("snap", 128, "pcap snap length (0 = full frames)")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	var (
		tr  *instameasure.Trace
		err error
	)
	switch *kind {
	case "zipf":
		tr, err = instameasure.GenerateZipfTrace(instameasure.ZipfTraceConfig{
			Flows:        *flows,
			TotalPackets: *packets,
			Skew:         *skew,
			Seed:         *seed,
		})
	case "diurnal":
		tr, err = instameasure.GenerateDiurnalTrace(instameasure.DiurnalTraceConfig{
			Hours:        *hours,
			TotalPackets: *packets,
			Seed:         *seed,
		})
	case "ddos":
		background, bgErr := instameasure.GenerateZipfTrace(instameasure.ZipfTraceConfig{
			Flows:        *flows / 10,
			TotalPackets: *packets,
			Seed:         *seed,
		})
		if bgErr != nil {
			return bgErr
		}
		attacker := instameasure.V4Key(0xDEADBEEF, 0x0A000001, 4444, 80, instameasure.ProtoUDP)
		tr, err = instameasure.InjectFlow(background, attacker, *rate,
			0, duration.Nanoseconds(), 1200, *seed)
	default:
		return fmt.Errorf("unknown kind %q (want zipf, diurnal, ddos)", *kind)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := instameasure.WritePcap(f, tr, *snapLen); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d packets, %d flows, %.2fs of trace time, %.1f MB on disk\n",
		*out, len(tr.Packets), tr.Flows(),
		float64(tr.Duration())/1e9, float64(info.Size())/1e6)
	return nil
}
