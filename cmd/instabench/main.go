// Command instabench regenerates every table and figure of the paper's
// evaluation section as text reports. By default it runs all experiments
// at the default scale; use -fig to select one and -scale to trade
// fidelity for runtime.
//
// Usage:
//
//	instabench                 # all figures, default scale
//	instabench -fig 9b         # one figure
//	instabench -scale small    # quick pass
//	instabench -scale large    # closer to the paper's flow/packet ratio
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"instameasure/internal/experiments"
	"instameasure/internal/flight"
	"instameasure/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "instabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig = flag.String("fig", "", "figure id to run (1, 6, 7, 8a, 8b, 8c, 9a, 9b, 10, 11, 12, 13, 14, "+
			"csm, iblt, deleg, evict, probe, shard, apps, onset, layers, hotcache, oracle, fleet); empty = all")
		scale   = flag.String("scale", "default", "workload scale: small, default, large")
		seed    = flag.Uint64("seed", 0, "override workload seed (0 = scale default)")
		metrics = flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/flight and /healthz on host:port while benchmarking")
		flightTL = flag.Bool("flight", false, "print the flight recorder's text timeline after the run (sampled hot-path spans from every experiment engine)")
	)
	flag.Parse()

	if *metrics != "" {
		// Runtime gauges plus pprof: profile a long experiment run live.
		// The experiment engines record into the process-wide flight
		// recorder, so /debug/flight shows their sampled spans too.
		reg := telemetry.NewRegistry("instameasure", 1)
		telemetry.RegisterRuntimeMetrics(reg)
		srv, err := telemetry.NewServer(*metrics, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		health := flight.NewHealth()
		srv.Handle("/debug/flight", flight.NewHandler(flight.Default()))
		srv.Handle("/healthz", health.LiveHandler())
		srv.Handle("/readyz", health.ReadyHandler())
		fmt.Printf("metrics at http://%s/metrics (pprof at /debug/pprof/, flight at /debug/flight)\n", srv.Addr())
	}

	s, err := pickScale(*scale)
	if err != nil {
		return err
	}
	if *seed != 0 {
		s.Seed = *seed
	}

	fmt.Printf("InstaMeasure benchmark harness — scale %q: %d flows / %d packets (CAIDA-like), %.0fh / %d packets (campus-like), seed %d\n\n",
		*scale, s.Flows, s.Packets, s.DiurnalHours, s.DiurnalPackets, s.Seed)

	start := time.Now()
	if *fig != "" {
		rep, err := experiments.ByID(*fig, s)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	} else {
		reports, err := experiments.All(s)
		if err != nil {
			return err
		}
		for _, rep := range reports {
			rep.Print(os.Stdout)
		}
	}
	fmt.Printf("total time: %s\n", time.Since(start).Round(time.Millisecond))
	if *flightTL {
		fmt.Println()
		if err := flight.WriteTimeline(os.Stdout, flight.Snapshot(flight.Default())); err != nil {
			return err
		}
	}
	return nil
}

func pickScale(name string) (experiments.Scale, error) {
	switch name {
	case "small":
		return experiments.ScaleSmall, nil
	case "default":
		return experiments.ScaleDefault, nil
	case "large":
		return experiments.ScaleLarge, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want small, default, large)", name)
	}
}
