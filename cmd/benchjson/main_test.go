package main

import (
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestParseLineMetrics(t *testing.T) {
	name, res, err := parseLine(
		"BenchmarkPipelineScaling/w8-8   \t 3\t 41234567 ns/op\t 52.60 Mpps\t 0.7363 scaling_eff\t 12 B/op\t 0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if name != "BenchmarkPipelineScaling/w8" {
		t.Errorf("name = %q", name)
	}
	if res.MPPS == nil || *res.MPPS != 52.60 {
		t.Errorf("MPPS = %v, want 52.60", res.MPPS)
	}
	if res.ScalingEff == nil || *res.ScalingEff != 0.7363 {
		t.Errorf("ScalingEff = %v, want 0.7363", res.ScalingEff)
	}
	if res.AllocsOp == nil || *res.AllocsOp != 0 {
		t.Errorf("AllocsOp = %v, want 0", res.AllocsOp)
	}
}

func TestGuardPassesWithinBand(t *testing.T) {
	doc := Document{
		Results: map[string]Result{
			"BenchmarkPipelineScaling/w8": {MPPS: fp(48.0), ScalingEff: fp(0.70)},
			"BenchmarkNoBaseline":         {MPPS: fp(1.0)},
		},
		Baseline: map[string]Result{
			"BenchmarkPipelineScaling/w8": {MPPS: fp(52.0)},
		},
	}
	if err := checkGuard(doc, 0.10, 0.60, 0.10); err != nil {
		t.Fatalf("guard failed inside the band: %v", err)
	}
}

func TestGuardFailsOnMppsRegression(t *testing.T) {
	doc := Document{
		Results:  map[string]Result{"B": {MPPS: fp(40.0)}},
		Baseline: map[string]Result{"B": {MPPS: fp(52.0)}},
	}
	err := checkGuard(doc, 0.10, 0.60, 0.10)
	if err == nil || !strings.Contains(err.Error(), "below guard") {
		t.Fatalf("want Mpps guard failure, got %v", err)
	}
}

func TestGuardFailsOnLowEfficiency(t *testing.T) {
	doc := Document{
		Results: map[string]Result{"B": {ScalingEff: fp(0.41)}},
	}
	err := checkGuard(doc, 0.10, 0.60, 0.10)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("want efficiency guard failure, got %v", err)
	}
}

func TestParseLineCacheHitRate(t *testing.T) {
	_, res, err := parseLine(
		"BenchmarkProcessBatchCachedPerPacket-8 	 7602205	 67.83 ns/op	 14.74 Mpps	 0.7440 cache_hit_rate	 0 B/op	 0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHitRate == nil || *res.CacheHitRate != 0.7440 {
		t.Errorf("CacheHitRate = %v, want 0.7440", res.CacheHitRate)
	}
}

func TestGuardFailsOnCachedNsRise(t *testing.T) {
	doc := Document{
		Results: map[string]Result{
			"BenchmarkProcessBatchCachedPerPacket": {NsPerOp: 90, CacheHitRate: fp(0.74)},
		},
		Baseline: map[string]Result{
			"BenchmarkProcessBatchCachedPerPacket": {NsPerOp: 68, CacheHitRate: fp(0.75)},
		},
	}
	err := checkGuard(doc, 0.10, 0.60, 0.10)
	if err == nil || !strings.Contains(err.Error(), "above guard") {
		t.Fatalf("want ns/op rise guard failure, got %v", err)
	}
	// Within the rise band the same pair passes.
	doc.Results["BenchmarkProcessBatchCachedPerPacket"] = Result{NsPerOp: 70, CacheHitRate: fp(0.74)}
	if err := checkGuard(doc, 0.10, 0.60, 0.10); err != nil {
		t.Fatalf("guard failed inside the rise band: %v", err)
	}
	// Benchmarks without a cache hit rate are exempt from the ns/op gate.
	doc.Results["BenchmarkProcessBatchCachedPerPacket"] = Result{NsPerOp: 500}
	if err := checkGuard(doc, 0.10, 0.60, 0.10); err != nil {
		t.Fatalf("uncached benchmark hit the ns/op gate: %v", err)
	}
}
