// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be archived, diffed, and gated in
// CI. It reads benchmark lines from stdin and writes one JSON object to
// the -o file (stdout by default):
//
//	go test -bench . -benchmem -run '^$' . | benchjson -o BENCH_hotpath.json
//
// With -baseline FILE, the "baseline" section of an earlier benchjson
// document is carried over verbatim — and if FILE has no baseline section,
// its results become the baseline — so a single output file records the
// before/after pair across a change.
//
// With -guard, the run becomes a regression gate: after writing the
// document, the tool exits non-zero if any benchmark's Mpps fell more than
// -mpps-drop below its baseline, or any reported scaling efficiency is
// below -eff-floor. Benchmarks absent from the baseline pass (first run
// establishes them).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics. Only ns/op is guaranteed;
// the remaining fields appear when the benchmark reports them.
type Result struct {
	Iterations int64    `json:"iterations"`
	NsPerOp    float64  `json:"ns_per_op"`
	AllocsOp   *float64 `json:"allocs_per_op,omitempty"`
	BytesOp    *float64 `json:"bytes_per_op,omitempty"`
	MBPerSec   *float64 `json:"mb_per_s,omitempty"`
	MPPS       *float64 `json:"mpps,omitempty"`
	ScalingEff *float64 `json:"scaling_eff,omitempty"`
	// CacheHitRate is reported by the hot-cache benchmarks; its presence
	// additionally puts the benchmark under the -ns-rise guard, because a
	// cached accumulate that slows down has lost the point of the cache.
	CacheHitRate *float64 `json:"cache_hit_rate,omitempty"`
}

// Document is the file layout: results keyed by benchmark name (CPU
// suffix stripped), plus optional environment lines and a carried-over
// baseline from a previous run.
type Document struct {
	GoOS     string            `json:"goos,omitempty"`
	GoArch   string            `json:"goarch,omitempty"`
	CPU      string            `json:"cpu,omitempty"`
	Results  map[string]Result `json:"results"`
	Baseline map[string]Result `json:"baseline,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		baseline = flag.String("baseline", "", "earlier benchjson document whose results become (or carry over as) the baseline")
		guard    = flag.Bool("guard", false, "fail on Mpps regression vs baseline or scaling efficiency below the floor")
		mppsDrop = flag.Float64("mpps-drop", 0.10, "with -guard: max allowed fractional Mpps drop vs baseline")
		effFloor = flag.Float64("eff-floor", 0.60, "with -guard: minimum allowed scaling efficiency")
		nsRise   = flag.Float64("ns-rise", 0.10, "with -guard: max allowed fractional ns/op rise vs baseline for benchmarks reporting cache_hit_rate")
	)
	flag.Parse()

	doc := Document{Results: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseLine(line)
			if err != nil {
				return fmt.Errorf("parse %q: %w", line, err)
			}
			doc.Results[name] = res
		}
		// Echo everything through so the tool can sit inside a pipe
		// without hiding failures or PASS/FAIL trailers.
		fmt.Println(line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			return err
		}
		doc.Baseline = base
	}

	blob, err := json.MarshalIndent(ordered(doc), "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if *guard {
		return checkGuard(doc, *mppsDrop, *effFloor, *nsRise)
	}
	return nil
}

// checkGuard enforces the throughput gate: every benchmark with an Mpps
// metric in both sections must hold at least (1-mppsDrop)× its baseline,
// every reported scaling efficiency must clear effFloor, and every
// benchmark reporting a cache hit rate must keep its ns/op within
// (1+nsRise)× of baseline — the cached accumulate path must never regress
// past its recorded cost.
func checkGuard(doc Document, mppsDrop, effFloor, nsRise float64) error {
	var fails []string
	names := make([]string, 0, len(doc.Results))
	for n := range doc.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		res := doc.Results[n]
		if res.MPPS != nil {
			if base, ok := doc.Baseline[n]; ok && base.MPPS != nil {
				floor := *base.MPPS * (1 - mppsDrop)
				if *res.MPPS < floor {
					fails = append(fails, fmt.Sprintf(
						"%s: %.2f Mpps below guard %.2f (baseline %.2f, max drop %.0f%%)",
						n, *res.MPPS, floor, *base.MPPS, mppsDrop*100))
				}
			}
		}
		if res.ScalingEff != nil && *res.ScalingEff < effFloor {
			fails = append(fails, fmt.Sprintf(
				"%s: scaling efficiency %.3f below floor %.2f",
				n, *res.ScalingEff, effFloor))
		}
		if res.CacheHitRate != nil {
			if base, ok := doc.Baseline[n]; ok && base.CacheHitRate != nil && base.NsPerOp > 0 {
				ceil := base.NsPerOp * (1 + nsRise)
				if res.NsPerOp > ceil {
					fails = append(fails, fmt.Sprintf(
						"%s: %.1f ns/op above guard %.1f (baseline %.1f, max rise %.0f%%)",
						n, res.NsPerOp, ceil, base.NsPerOp, nsRise*100))
				}
			}
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("guard failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   1000  123.4 ns/op  5 B/op  2 allocs/op  8.07 Mpps
func parseLine(line string) (string, Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", Result{}, fmt.Errorf("want at least 4 fields, have %d", len(f))
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix so names are stable across hosts.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, fmt.Errorf("iterations: %w", err)
	}
	res := Result{Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Result{}, fmt.Errorf("metric value %q: %w", f[i], err)
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "allocs/op":
			res.AllocsOp = &v
		case "B/op":
			res.BytesOp = &v
		case "MB/s":
			res.MBPerSec = &v
		case "Mpps":
			res.MPPS = &v
		case "scaling_eff":
			res.ScalingEff = &v
		case "cache_hit_rate":
			res.CacheHitRate = &v
		}
	}
	if !sawNs {
		return "", Result{}, fmt.Errorf("no ns/op metric")
	}
	return name, res, nil
}

// loadBaseline extracts the comparison section from an earlier document:
// its baseline if it has one, otherwise its results.
func loadBaseline(path string) (map[string]Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Baseline) > 0 {
		return doc.Baseline, nil
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("%s: no results or baseline section", path)
	}
	return doc.Results, nil
}

// ordered re-marshals the document with deterministically sorted keys.
// encoding/json already sorts map keys, so this is just a stable wrapper
// that keeps the section order fixed.
func ordered(doc Document) any {
	type out struct {
		GoOS     string            `json:"goos,omitempty"`
		GoArch   string            `json:"goarch,omitempty"`
		CPU      string            `json:"cpu,omitempty"`
		Names    []string          `json:"benchmarks"`
		Results  map[string]Result `json:"results"`
		Baseline map[string]Result `json:"baseline,omitempty"`
	}
	names := make([]string, 0, len(doc.Results))
	for n := range doc.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	return out{
		GoOS:     doc.GoOS,
		GoArch:   doc.GoArch,
		CPU:      doc.CPU,
		Names:    names,
		Results:  doc.Results,
		Baseline: doc.Baseline,
	}
}
