// Command instameasure measures per-flow traffic from a pcap capture file
// or a generated synthetic workload, and reports flow counts, Top-K lists,
// and heavy hitters — the measurement device of the paper, as a CLI.
//
// Usage:
//
//	instameasure -pcap trace.pcap -top 20
//	instameasure -synth -flows 100000 -packets 2000000 -hh-pkts 10000
//	instameasure -pcap trace.pcap -workers 4 -sketch-kb 128
//	cat trace.pcap | instameasure -pcap - -stream -epoch 1000000
//	instameasure -pcap trace.pcap -snapshot flows.ims -export host:port
//	instameasure -collect :9000 -ddos-sources 1000 -metrics :8080
//	instameasure -pcap trace.pcap -epoch 100000 -export host:9000 -site edge-1
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"instameasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "instameasure:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pcapPath = flag.String("pcap", "", "pcap capture file to measure")
		synth    = flag.Bool("synth", false, "measure a synthetic Zipf workload instead of a capture")
		flows    = flag.Int("flows", 100_000, "synthetic workload: number of flows")
		packets  = flag.Int("packets", 2_000_000, "synthetic workload: number of packets")
		seed     = flag.Uint64("seed", 0, "measurement and workload seed (0 = random per run; the chosen seed is printed)")
		sketchKB = flag.Int("sketch-kb", 32, "L1 sketch memory in KB (total FlowRegulator = 4x)")
		wsafExp  = flag.Int("wsaf-exp", 20, "WSAF size as a power of two (20 = paper default)")
		hotCache = flag.Int("hotcache", 0, "exact hot-flow cache entries in front of the WSAF (0 = off, 4096 typical)")
		workers  = flag.Int("workers", 1, "worker cores (1 = single-core meter)")
		batch    = flag.Int("batch", 256, "burst size packets travel in between manager and workers")
		topK     = flag.Int("top", 10, "print the K largest flows by packets and bytes")
		hhPkts   = flag.Float64("hh-pkts", 0, "heavy-hitter packet threshold (0 = off)")
		hhBytes  = flag.Float64("hh-bytes", 0, "heavy-hitter byte threshold (0 = off)")
		stream   = flag.Bool("stream", false, "decode the pcap incrementally (constant memory; '-' reads stdin)")
		epoch    = flag.Int("epoch", 0, "cut an epoch every N packets (0 = off): print interim stats, export, commit to -store")
		interval = flag.Duration("epoch-interval", 0, "cut an epoch every D of trace time (capture timestamps), e.g. 500ms; combines with -epoch — whichever fires first cuts")
		snapshot = flag.String("snapshot", "", "write the final flow table to this snapshot file")
		exportTo = flag.String("export", "", "export each epoch's flow table to a collector at host:port")
		site     = flag.String("site", "", "site ID stamped on exported batches (1-64 printable ASCII; requires -export)")
		collect  = flag.String("collect", "", "run a fleet collector on host:port instead of measuring (see -ddos-sources, -spread-dsts, -scan-ports, -metrics)")
		ddosSrc  = flag.Float64("ddos-sources", 0, "collector: alert when one destination sees this many distinct sources per window (0 = off)")
		spread   = flag.Float64("spread-dsts", 0, "collector: alert when one source contacts this many distinct destinations per window (0 = off)")
		scan     = flag.Float64("scan-ports", 0, "collector: alert when one source probes this many distinct ports per window (0 = off)")
		metrics  = flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/flight, /healthz and /readyz on host:port")
		storeDir = flag.String("store", "", "append each epoch's flow table to the epoch store in this directory (query with /flows or wsafdump -store)")
		storeSyn = flag.Bool("store-sync", false, "fsync the store after every epoch append")
		sloBudget = flag.Duration("slo-budget", 0, "detection-delay budget: p99 epoch cut-to-commit latency the run promises (0 = no SLO); burn state is the instameasure_slo_burn gauge")
		flightOut = flag.String("flight-dump", "", "write the flight recorder's JSON dump to this file at exit (re-render with wsafdump -flight)")
	)
	flag.Parse()

	if *sloBudget > 0 {
		instameasure.SetDetectionDelayBudget(*sloBudget)
	}

	if *collect != "" {
		return runCollect(*collect, *metrics, instameasure.FleetConfig{
			DDoSSources:  *ddosSrc,
			SpreaderDsts: *spread,
			ScanPorts:    *scan,
		})
	}
	if *site != "" && *exportTo == "" {
		return errors.New("-site requires -export")
	}

	// Resolve the seed here rather than letting the library draw one:
	// it also drives the synthetic workload, and printing it makes any
	// run reproducible with an explicit -seed.
	if *seed == 0 {
		*seed = instameasure.RandomSeed()
		fmt.Printf("seed %d (pass -seed %d to reproduce this run)\n", *seed, *seed)
	}

	cfg := instameasure.Config{
		SketchMemoryBytes: *sketchKB << 10,
		WSAFEntries:       1 << *wsafExp,
		HotCacheEntries:   *hotCache,
		Seed:              *seed,
	}

	var src instameasure.PacketSource
	switch {
	case *pcapPath != "":
		var in io.Reader
		if *pcapPath == "-" {
			in = os.Stdin
		} else {
			f, err := os.Open(*pcapPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if *stream || *pcapPath == "-" {
			s, err := instameasure.OpenPcapStream(in)
			if err != nil {
				return fmt.Errorf("open %s: %w", *pcapPath, err)
			}
			fmt.Printf("streaming %s\n", *pcapPath)
			src = s
			break
		}
		tr, err := instameasure.ReadPcap(in)
		if err != nil {
			return fmt.Errorf("read %s: %w", *pcapPath, err)
		}
		fmt.Printf("loaded %s: %d packets, %d flows\n", *pcapPath, len(tr.Packets), tr.Flows())
		src = tr.Source()
	case *synth:
		tr, err := instameasure.GenerateZipfTrace(instameasure.ZipfTraceConfig{
			Flows:        *flows,
			TotalPackets: *packets,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("generated synthetic trace: %d packets, %d flows\n", len(tr.Packets), tr.Flows())
		src = tr.Source()
	default:
		return errors.New("need -pcap FILE or -synth (see -h)")
	}

	opts := meterOpts{
		topK:      *topK,
		hhPkts:    *hhPkts,
		hhBytes:   *hhBytes,
		epoch:     *epoch,
		interval:  *interval,
		snapshot:  *snapshot,
		exportTo:  *exportTo,
		site:      *site,
		metrics:   *metrics,
		store:     *storeDir,
		storeSync: *storeSyn,
	}
	var err error
	if *workers > 1 {
		err = runCluster(cfg, *workers, *batch, src, opts)
	} else {
		err = runMeter(cfg, src, opts)
	}
	if err != nil {
		return err
	}
	return writeFlightDump(*flightOut)
}

// runCollect runs a standalone fleet collector: meters export to it
// (instameasure -export HOST:PORT -site NAME), it aggregates per-site
// and network-wide views, runs the configured streaming detectors, and
// serves /fleet/* plus /metrics when -metrics is set. Runs until
// SIGINT/SIGTERM.
func runCollect(addr, metricsAddr string, cfg instameasure.FleetConfig) error {
	cfg.OnAlert = func(al instameasure.FleetAlert) {
		fmt.Printf("ALERT #%d %s host=%s estimate=%.0f threshold=%.0f sites=%v epoch=%d\n",
			al.Seq, al.Kind, al.Host, al.Estimate, al.Threshold, al.Sites, al.Epoch)
	}
	coll, err := instameasure.NewCollector(addr, nil)
	if err != nil {
		return err
	}
	defer coll.Close()
	fl, err := coll.EnableFleet(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("fleet collector listening on %s\n", coll.Addr())
	if metricsAddr != "" {
		srv, err := instameasure.NewTelemetry().Serve(metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.ServeFleet(fl)
		fmt.Printf("fleet API at %s/fleet/topk (sites, changers, alerts, stats; metrics at /metrics)\n", srv.URL())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := fl.Stats()
	fmt.Printf("\nfleet: %d sites, %d flows, %d batches, %d records, %d alerts\n",
		st.Sites, st.Flows, st.Batches, st.Records, st.Alerts)
	return nil
}

// writeFlightDump saves the flight recorder's state as JSON, for offline
// re-rendering with wsafdump -flight.
func writeFlightDump(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(instameasure.FlightSnapshot()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote flight dump to %s\n", path)
	return nil
}

type meterOpts struct {
	topK      int
	hhPkts    float64
	hhBytes   float64
	epoch     int           // cut every N packets (0 = off)
	interval  time.Duration // cut every D of trace time (0 = off)
	snapshot  string
	exportTo  string
	site      string
	metrics   string
	store     string
	storeSync bool
}

// storeOptions maps the CLI flags to StoreOptions.
func (o meterOpts) storeOptions() instameasure.StoreOptions {
	opt := instameasure.StoreOptions{}
	if o.storeSync {
		opt.Sync = instameasure.StoreSyncEach
	}
	return opt
}

// serveMetrics starts the observability endpoint when addr is non-empty.
func serveMetrics(t *instameasure.Telemetry, addr string) (*instameasure.TelemetryServer, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := t.Serve(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("metrics at %s/metrics (expvar at /debug/vars, pprof at /debug/pprof/, flight at /debug/flight, health at /healthz and /readyz)\n", srv.URL())
	return srv, nil
}

func runMeter(cfg instameasure.Config, src instameasure.PacketSource, opts meterOpts) error {
	meter, err := instameasure.New(cfg)
	if err != nil {
		return err
	}
	if opts.hhPkts > 0 || opts.hhBytes > 0 {
		err := meter.OnHeavyHitter(opts.hhPkts, opts.hhBytes, func(ev instameasure.HeavyHitterEvent) {
			kind := "packet"
			if ev.ByBytes {
				kind = "byte"
			}
			fmt.Printf("HEAVY HITTER (%s) t=%.3fms %s est %.0f pkts / %.2f MB\n",
				kind, float64(ev.TS)/1e6, ev.Key, ev.Pkts, ev.Bytes/1e6)
		})
		if err != nil {
			return err
		}
	}

	srv, err := serveMetrics(meter.Telemetry(), opts.metrics)
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
	}

	if opts.store != "" {
		fs, err := instameasure.OpenFlowStore(opts.store, opts.storeOptions())
		if err != nil {
			return err
		}
		defer fs.Close()
		meter.AttachStore(fs)
		if srv != nil {
			srv.ServeFlows(fs) // also instruments the store on the registry
			fmt.Printf("flow history at %s/flows/topk (timeline, changers, stats)\n", srv.URL())
		} else {
			fs.Instrument(meter.Telemetry())
		}
		fmt.Printf("committing epochs to store %s\n", opts.store)
	}

	var exporter *instameasure.Exporter
	if opts.exportTo != "" {
		exporter, err = instameasure.DialCollector(opts.exportTo)
		if err != nil {
			return err
		}
		defer exporter.Close()
		if opts.site != "" {
			if err := exporter.WithSite(opts.site); err != nil {
				return err
			}
		}
		exporter.Instrument(meter.Telemetry())
		if srv != nil {
			exp := exporter
			srv.RegisterHealth("exporter", func() error {
				if !exp.Connected() {
					return errors.New("collector connection down")
				}
				return nil
			})
		}
	}

	n, err := drain(meter, src, opts, exporter)
	if err != nil {
		return err
	}
	st := meter.Stats()
	fmt.Printf("\nprocessed %d packets (%.2f GB)\n", n, float64(st.Bytes)/1e9)
	fmt.Printf("regulation rate %.3f%% | active flows %d | WSAF load %.2f%%\n",
		st.RegulationRate*100, st.ActiveFlows, st.WSAFLoadFactor*100)
	fmt.Printf("WSAF churn: %d evictions, %d expirations, %d drops\n",
		st.WSAFEvictions, st.WSAFExpirations, st.WSAFDrops)
	if st.HotCacheHits > 0 || st.HotCachePromotions > 0 {
		fmt.Printf("hot cache: %.1f%% hit rate, %d promotions, %d demotions\n",
			st.HotCacheHitRate*100, st.HotCachePromotions, st.HotCacheDemotions)
	}
	fmt.Printf("memory: %d KB sketch + %d MB WSAF\n\n",
		st.SketchMemoryBytes>>10, st.WSAFMemoryBytes>>20)

	printTop(os.Stdout, "packets", meter.TopKPackets(opts.topK))
	printTop(os.Stdout, "bytes", meter.TopKBytes(opts.topK))

	if opts.snapshot != "" {
		f, err := os.Create(opts.snapshot)
		if err != nil {
			return err
		}
		if err := meter.ExportSnapshot(f, int64(n)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote flow table snapshot to %s (%d flows)\n",
			opts.snapshot, st.ActiveFlows)
	}
	if exporter != nil {
		if err := exporter.ExportMeter(meter, -1); err != nil {
			return err
		}
		fmt.Printf("exported final flow table to %s\n", opts.exportTo)
	}
	return nil
}

// drain feeds the source through the meter, cutting epochs on either
// trigger — every opts.epoch packets and/or every opts.interval of trace
// time (capture timestamps), whichever fires first; both counters then
// restart from the cut. Each cut prints interim stats, exports to the
// collector, and commits a snapshot to the attached store. With a store
// attached, the final table is committed as one last epoch on EOF so a
// run's tail is never lost.
func drain(meter *instameasure.Meter, src instameasure.PacketSource, opts meterOpts, exporter *instameasure.Exporter) (uint64, error) {
	hasStore := meter.Store() != nil
	if opts.epoch <= 0 && opts.interval <= 0 && !hasStore {
		return meter.ProcessSource(src)
	}
	var n uint64
	var sincePkts uint64 // packets since the last cut
	var nextCut int64    // trace-time ns of the next interval cut (0 = unarmed)
	epochID := int64(0)

	cut := func() error {
		epochID++
		sincePkts = 0
		// Open the epoch's detection-delay interval in the flight recorder
		// before the export/commit pipeline starts.
		meter.MarkEpochCut(epochID)
		st := meter.Stats()
		// Interim ratios read back from the live telemetry registry —
		// the same series a Prometheus scrape of -metrics would see.
		tm := meter.Telemetry()
		pkts := tm.Value("instameasure_packets_total")
		regulation := 0.0
		if pkts > 0 {
			regulation = tm.Value("instameasure_wsaf_delegations_total") / pkts
		}
		occupancy := 0.0
		if capacity := tm.Value("instameasure_wsaf_capacity_entries"); capacity > 0 {
			occupancy = tm.Value("instameasure_wsaf_occupancy") / capacity
		}
		fmt.Printf("epoch %d: %d packets, %d flows, regulation %.3f%%, WSAF occupancy %.2f%%\n",
			epochID, n, st.ActiveFlows, regulation*100, occupancy*100)
		if exporter != nil {
			if err := exporter.ExportMeter(meter, epochID); err != nil {
				return err
			}
		}
		if hasStore {
			if err := meter.CommitEpoch(epochID); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			// Commit whatever accumulated since the last cut as a final
			// epoch, so the stored history covers the whole run.
			if hasStore && sincePkts > 0 {
				meter.MarkEpochCut(epochID + 1)
				if err := meter.CommitEpoch(epochID + 1); err != nil {
					return n, err
				}
			}
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if opts.interval > 0 && nextCut == 0 {
			nextCut = p.TS + int64(opts.interval)
		}
		meter.Process(p)
		n++
		sincePkts++
		switch {
		case opts.epoch > 0 && sincePkts >= uint64(opts.epoch):
			if err := cut(); err != nil {
				return n, err
			}
			if opts.interval > 0 {
				nextCut = p.TS + int64(opts.interval)
			}
		case opts.interval > 0 && p.TS >= nextCut:
			if err := cut(); err != nil {
				return n, err
			}
			// Skip over idle gaps instead of cutting empty epochs.
			for nextCut <= p.TS {
				nextCut += int64(opts.interval)
			}
		}
	}
}

func runCluster(cfg instameasure.Config, workers, batch int, src instameasure.PacketSource, opts meterOpts) error {
	// Split the WSAF budget across workers to keep total memory fixed.
	cfg.WSAFEntries /= workers
	if cfg.WSAFEntries < 1024 {
		cfg.WSAFEntries = 1024
	}
	cluster, err := instameasure.NewCluster(instameasure.ClusterConfig{
		Meter:     cfg,
		Workers:   workers,
		BatchSize: batch,
	})
	if err != nil {
		return err
	}
	srv, err := serveMetrics(cluster.Telemetry(), opts.metrics)
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
		srv.RegisterHealth("pipeline", cluster.Saturated)
	}
	if opts.store != "" {
		fs, err := instameasure.OpenFlowStore(opts.store, opts.storeOptions())
		if err != nil {
			return err
		}
		defer fs.Close()
		cluster.AttachStore(fs)
		if srv != nil {
			srv.ServeFlows(fs)
			fmt.Printf("flow history at %s/flows/topk (timeline, changers, stats)\n", srv.URL())
		}
	}
	rep, err := cluster.Run(src)
	if err != nil {
		return err
	}
	if cluster.Store() != nil {
		// The cluster drains the whole source in one go; its history is a
		// single epoch holding the merged final table.
		cluster.MarkEpochCut(1)
		if err := cluster.CommitEpoch(1); err != nil {
			return err
		}
		fmt.Printf("committed merged flow table to store %s\n", opts.store)
	}
	fmt.Printf("\nprocessed %d packets at %.2f Mpps with %d workers\n",
		rep.Packets, rep.MPPS, workers)
	for w, n := range rep.PerWorker {
		fmt.Printf("  worker %d: %d packets\n", w, n)
	}
	fmt.Printf("cluster regulation rate %.3f%%\n\n", rep.RegulationRate*100)
	printTop(os.Stdout, "packets", cluster.TopKPackets(opts.topK))
	printTop(os.Stdout, "bytes", cluster.TopKBytes(opts.topK))

	if opts.snapshot != "" {
		f, err := os.Create(opts.snapshot)
		if err != nil {
			return err
		}
		if err := cluster.ExportSnapshot(f, int64(rep.Packets)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote merged flow table snapshot to %s\n", opts.snapshot)
	}
	return nil
}

func printTop(w io.Writer, metric string, recs []instameasure.FlowRecord) {
	fmt.Fprintf(w, "top %d flows by %s:\n", len(recs), metric)
	for i, rec := range recs {
		fmt.Fprintf(w, "%3d. %-48s %12.0f pkts %10.2f MB\n",
			i+1, rec.Key, rec.Pkts, rec.Bytes/1e6)
	}
	fmt.Fprintln(w)
}
