// Command wsafdump inspects flow-table snapshot files written by
// instameasure's -snapshot flag or Meter.ExportSnapshot: header info,
// summary statistics, and the largest flows.
//
// Usage:
//
//	wsafdump flows.ims
//	wsafdump -top 50 -by bytes flows.ims
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"instameasure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsafdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topK = flag.Int("top", 20, "print the K largest flows")
		by   = flag.String("by", "packets", "rank by 'packets' or 'bytes'")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return errors.New("usage: wsafdump [-top K] [-by packets|bytes] FILE")
	}
	if *by != "packets" && *by != "bytes" {
		return fmt.Errorf("unknown -by %q (want packets or bytes)", *by)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	info, err := instameasure.ReadSnapshotDetail(f)
	if err != nil {
		return err
	}
	flows, epoch := info.Records, info.Epoch

	var totalPkts, totalBytes float64
	minTS, maxTS := int64(1<<62), int64(0)
	for _, rec := range flows {
		totalPkts += rec.Pkts
		totalBytes += rec.Bytes
		if rec.FirstSeen < minTS {
			minTS = rec.FirstSeen
		}
		if rec.LastUpdate > maxTS {
			maxTS = rec.LastUpdate
		}
	}

	fmt.Printf("%s: epoch %d, %d flows\n", flag.Arg(0), epoch, len(flows))
	if info.HasStats {
		st := info.Stats
		fmt.Printf("WSAF activity: %d updates, %d inserts, %d expirations, %d evictions, %d drops\n",
			st.Updates, st.Inserts, st.Expirations, st.Evictions, st.Drops)
	}
	if len(flows) == 0 {
		return nil
	}
	fmt.Printf("totals: %.0f packets, %.2f MB\n", totalPkts, totalBytes/1e6)
	fmt.Printf("window: %.3fs of trace time\n\n", float64(maxTS-minTS)/1e9)

	metric := func(r *instameasure.FlowRecord) float64 { return r.Pkts }
	if *by == "bytes" {
		metric = func(r *instameasure.FlowRecord) float64 { return r.Bytes }
	}
	sort.Slice(flows, func(i, j int) bool {
		return metric(&flows[i]) > metric(&flows[j])
	})
	if *topK < len(flows) {
		flows = flows[:*topK]
	}
	fmt.Printf("top %d flows by %s:\n", len(flows), *by)
	for i, rec := range flows {
		fmt.Printf("%3d. %-48s %12.0f pkts %10.2f MB\n",
			i+1, rec.Key, rec.Pkts, rec.Bytes/1e6)
	}
	return nil
}
