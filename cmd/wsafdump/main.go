// Command wsafdump inspects flow-table snapshot files written by
// instameasure's -snapshot flag or Meter.ExportSnapshot — and, with
// -store, queries an epoch store directory written by -store.
//
// Usage:
//
//	wsafdump flows.ims
//	wsafdump -top 50 -by bytes flows.ims
//	wsafdump -store ./history                        # summary + epoch list
//	wsafdump -store ./history -top 20 -by bytes      # windowed top-k
//	wsafdump -store ./history -from 3 -to 7 -top 10  # over epochs [3,7]
//	wsafdump -store ./history -timeline 1a2b3c4d5e6f7890
//	wsafdump -store ./history -changers 10
//	wsafdump -flight flight.json                     # re-render a saved flight dump
//	wsafdump -flight meter.json collector.json       # stitch two processes' dumps
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"instameasure"
	"instameasure/internal/flight"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsafdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topK     = flag.Int("top", 20, "print the K largest flows")
		by       = flag.String("by", "packets", "rank by 'packets' or 'bytes'")
		storeDir = flag.String("store", "", "query an epoch store directory instead of a snapshot file")
		from     = flag.Int64("from", 0, "store query: window start epoch (0 = open)")
		to       = flag.Int64("to", 0, "store query: window end epoch (0 = open)")
		timeline = flag.String("timeline", "", "store query: per-epoch history of one flow (16-hex flow id)")
		changers = flag.Int("changers", 0, "store query: print the K heaviest changers between the last two epochs")
		flightTL = flag.Bool("flight", false, "treat FILE args as saved flight-recorder JSON dumps (from /debug/flight or instameasure -flight-dump) and print the merged text timeline")
	)
	flag.Parse()
	if *by != "packets" && *by != "bytes" {
		return fmt.Errorf("unknown -by %q (want packets or bytes)", *by)
	}
	if *flightTL {
		if flag.NArg() == 0 {
			return errors.New("-flight needs one or more dump files (the JSON from /debug/flight or -flight-dump)")
		}
		return runFlight(flag.Args())
	}
	if *storeDir != "" {
		if flag.NArg() != 0 {
			return errors.New("-store takes no file argument")
		}
		return runStore(*storeDir, *topK, *by == "bytes", instameasure.EpochWindow{From: *from, To: *to}, *timeline, *changers)
	}
	if flag.NArg() != 1 {
		return errors.New("usage: wsafdump [-top K] [-by packets|bytes] FILE | wsafdump -store DIR [...]")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	info, err := instameasure.ReadSnapshotDetail(f)
	if err != nil {
		return err
	}
	flows, epoch := info.Records, info.Epoch

	var totalPkts, totalBytes float64
	minTS, maxTS := int64(1<<62), int64(0)
	for _, rec := range flows {
		totalPkts += rec.Pkts
		totalBytes += rec.Bytes
		if rec.FirstSeen < minTS {
			minTS = rec.FirstSeen
		}
		if rec.LastUpdate > maxTS {
			maxTS = rec.LastUpdate
		}
	}

	fmt.Printf("%s: epoch %d, %d flows\n", flag.Arg(0), epoch, len(flows))
	if info.HasStats {
		st := info.Stats
		fmt.Printf("WSAF activity: %d updates, %d inserts, %d expirations, %d evictions, %d drops\n",
			st.Updates, st.Inserts, st.Expirations, st.Evictions, st.Drops)
	}
	if len(flows) == 0 {
		return nil
	}
	fmt.Printf("totals: %.0f packets, %.2f MB\n", totalPkts, totalBytes/1e6)
	fmt.Printf("window: %.3fs of trace time\n\n", float64(maxTS-minTS)/1e9)

	metric := func(r *instameasure.FlowRecord) float64 { return r.Pkts }
	if *by == "bytes" {
		metric = func(r *instameasure.FlowRecord) float64 { return r.Bytes }
	}
	sort.Slice(flows, func(i, j int) bool {
		return metric(&flows[i]) > metric(&flows[j])
	})
	if *topK < len(flows) {
		flows = flows[:*topK]
	}
	fmt.Printf("top %d flows by %s:\n", len(flows), *by)
	for i, rec := range flows {
		fmt.Printf("%3d. %-48s %12.0f pkts %10.2f MB\n",
			i+1, rec.Key, rec.Pkts, rec.Bytes/1e6)
	}
	return nil
}

// runFlight re-renders saved flight-recorder dumps offline. Several files
// merge into one stream keyed by epoch id, so a meter-side dump and a
// collector-side dump reconstruct the cross-process cut→commit timeline.
func runFlight(paths []string) error {
	dumps := make([]flight.Dump, 0, len(paths))
	var merged flight.Dump
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var d flight.Dump
		if err := json.Unmarshal(data, &d); err != nil {
			return fmt.Errorf("%s: not a flight dump: %w", path, err)
		}
		if d.TakenUnixNS > merged.TakenUnixNS {
			merged.TakenUnixNS = d.TakenUnixNS
		}
		// Keep the SLO view with the most observed epochs — typically the
		// store-side process, which sees the commits.
		if d.SLO.Epochs > merged.SLO.Epochs {
			merged.SLO = d.SLO
		}
		dumps = append(dumps, d)
	}
	// JSON carries stage names, not the internal Stage codes; MergeEvents
	// re-parses them and sorts, then the epochs are rebuilt from scratch.
	merged.Events = flight.MergeEvents(dumps...)
	merged.Epochs = flight.Reconstruct(merged.Events)
	return flight.WriteTimeline(os.Stdout, merged)
}

// runStore answers queries over an epoch store directory.
func runStore(dir string, topK int, byBytes bool, win instameasure.EpochWindow, timeline string, changers int) error {
	fs, err := instameasure.OpenFlowStore(dir, instameasure.StoreOptions{})
	if err != nil {
		return err
	}
	defer fs.Close()

	switch {
	case timeline != "":
		id, err := strconv.ParseUint(timeline, 16, 64)
		if err != nil {
			return fmt.Errorf("bad -timeline flow id %q (want 16 hex digits)", timeline)
		}
		points, key, err := fs.TimelineByHash(id)
		if err != nil {
			return err
		}
		if len(points) == 0 {
			fmt.Printf("no flow with id %s in the store\n", timeline)
			return nil
		}
		fmt.Printf("flow %s (id %s), %d epochs:\n", key, timeline, len(points))
		for _, p := range points {
			fmt.Printf("  epoch %6d: %12.0f pkts %10.2f MB\n", p.Epoch, p.Pkts, p.Bytes/1e6)
		}
		return nil

	case changers > 0:
		older, newer, ok := fs.DefaultChangerWindows()
		if !ok {
			return errors.New("heavy changers need at least two stored epochs")
		}
		by := "packets"
		if byBytes {
			by = "bytes"
		}
		changes, err := fs.HeavyChangers(older, newer, changers, byBytes)
		if err != nil {
			return err
		}
		fmt.Printf("top %d changers by %s, epoch %d vs %d:\n", len(changes), by, newer.From, older.From)
		for i, c := range changes {
			fmt.Printf("%3d. %-48s %+12.0f pkts %+10.2f MB  (pkts %.0f→%.0f)\n",
				i+1, c.Key, c.Pkts, c.Bytes/1e6, c.OlderPkts, c.NewerPkts)
		}
		return nil

	default:
		st := fs.Stats()
		fmt.Printf("%s: %d segments, %d records, %d epochs [%d..%d], %d flows, %.2f MB\n",
			dir, st.Segments, st.Records, st.Epochs, st.MinEpoch, st.MaxEpoch, st.Flows, float64(st.Bytes)/1e6)
		if st.Truncations > 0 || st.Compactions > 0 {
			fmt.Printf("recovered %d torn tails; %d compactions, %d segments retired\n",
				st.Truncations, st.Compactions, st.Retired)
		}
		by := "packets"
		if byBytes {
			by = "bytes"
		}
		flows, err := fs.TopK(win, topK, byBytes)
		if err != nil {
			return err
		}
		if win == (instameasure.EpochWindow{}) {
			fmt.Printf("\ntop %d flows by %s (all history):\n", len(flows), by)
		} else {
			fmt.Printf("\ntop %d flows by %s in epochs [%d..%d]:\n", len(flows), by, win.From, win.To)
		}
		for i, f := range flows {
			fmt.Printf("%3d. %-48s %12.0f pkts %10.2f MB  id %016x\n",
				i+1, f.Key, f.Pkts, f.Bytes/1e6, f.Key.Hash64(0))
		}
		return nil
	}
}
