package instameasure

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTelemetryServer hammers the observability endpoints while
// a meter is actively processing — the deployment shape where Prometheus
// scrapes and Kubernetes probes land mid-trace. Run under -race (tier1
// does), this is the data-race gate for the whole metrics/flight/health
// surface.
func TestConcurrentTelemetryServer(t *testing.T) {
	tr := testTrace(t)
	m := testMeter(t)
	srv, err := m.Telemetry().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterHealth("self", func() error { return nil })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/debug/vars", "/healthz", "/debug/flight", "/readyz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL() + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil {
					t.Errorf("%s: read: %v", path, cerr)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}

	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// TestFlightSmoke is the acceptance run for the flight recorder: a live
// exporter→collector→store pipeline, then /debug/flight must reconstruct
// the epoch's complete cut→encode→send→receive→commit timeline from the
// process-wide recorder. The flight-smoke make target runs exactly this.
func TestFlightSmoke(t *testing.T) {
	// The Default() recorder is shared by every test in this binary, so
	// this test claims a distinctive epoch id no other test uses.
	const epoch = 774_411

	coll, err := NewCollector("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	fs, err := OpenFlowStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	coll.WithStore(fs)

	tr := testTrace(t)
	m := testMeter(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}

	exp, err := DialCollector(coll.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if !exp.Connected() {
		t.Error("freshly dialed exporter reports not connected")
	}
	if !coll.Listening() {
		t.Error("open collector reports not listening")
	}
	if err := fs.Healthy(); err != nil {
		t.Errorf("open store reports unhealthy: %v", err)
	}

	SetDetectionDelayBudget(5 * time.Second)
	m.MarkEpochCut(epoch)
	if err := exp.ExportMeter(m, epoch); err != nil {
		t.Fatal(err)
	}

	// The collector merges and commits on its connection goroutine; poll
	// the recorder until the epoch's timeline closes.
	deadline := time.Now().Add(10 * time.Second)
	var tl *FlightEpoch
	for time.Now().Before(deadline) {
		d := FlightSnapshot()
		for i := range d.Epochs {
			if d.Epochs[i].Epoch == epoch && d.Epochs[i].Complete {
				tl = &d.Epochs[i]
			}
		}
		if tl != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tl == nil {
		t.Fatalf("epoch %d never completed in the flight recorder:\n%+v", epoch, FlightSnapshot().Epochs)
	}

	seen := map[string]bool{}
	for _, mark := range tl.Stages {
		seen[mark.Stage.String()] = true
	}
	for _, want := range []string{"cut", "encode", "send", "receive", "commit"} {
		if !seen[want] {
			t.Errorf("epoch %d timeline missing the %s stage (saw %v)", epoch, want, seen)
		}
	}
	if tl.CutToCommitNS <= 0 {
		t.Errorf("complete epoch has cut→commit %dns", tl.CutToCommitNS)
	}

	// The same timeline must come back over HTTP, in both views, and the
	// SLO tracker must have measured the epoch against the budget.
	srv, err := m.Telemetry().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("/debug/flight is not a JSON dump: %v", err)
	}
	found := false
	for _, e := range d.Epochs {
		if e.Epoch == epoch && e.Complete {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/flight lost epoch %d's complete timeline", epoch)
	}
	if d.SLO.Epochs == 0 {
		t.Error("SLO tracker measured no epochs after a cut→commit pair")
	}
	if d.SLO.BudgetNS != int64(5*time.Second) {
		t.Errorf("SLO budget = %dns, want 5s", d.SLO.BudgetNS)
	}

	resp, err = http.Get(srv.URL() + "/debug/flight?fmt=text")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "epoch 774411") {
		t.Errorf("text timeline missing the epoch header:\n%s", text)
	}

	// Health probes: everything is up, so /readyz serves 200.
	srv.RegisterHealth("exporter", func() error {
		if !exp.Connected() {
			return errors.New("collector connection down")
		}
		return nil
	})
	srv.ServeFlows(fs)
	resp, err = http.Get(srv.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain only
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz with healthy components = %d, want 200", resp.StatusCode)
	}
}
