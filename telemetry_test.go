package instameasure

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMeterTelemetryRendering is the acceptance check for the public
// telemetry surface: a processed meter renders valid Prometheus text
// containing the headline series.
func TestMeterTelemetryRendering(t *testing.T) {
	tr := testTrace(t)
	m := testMeter(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	tm := m.Telemetry()

	var buf bytes.Buffer
	if err := tm.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"instameasure_packets_total",
		"instameasure_wsaf_probe_length_bucket",
		"instameasure_l1_recycles_total",
		"instameasure_regulation_ratio",
		"instameasure_wsaf_occupancy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	st := m.Stats()
	if got := tm.Value("instameasure_packets_total"); got != float64(st.Packets) {
		t.Errorf("packets_total = %g, want %d", got, st.Packets)
	}
	names := tm.MetricNames()
	if len(names) == 0 {
		t.Fatal("MetricNames empty")
	}
	seen := false
	tm.Each(func(series string, _ float64) {
		if strings.HasPrefix(series, "instameasure_packets_total") {
			seen = true
		}
	})
	if !seen {
		t.Error("Each never visited packets_total")
	}
}

func TestTelemetryServeEndToEnd(t *testing.T) {
	tr := testTrace(t)
	m := testMeter(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	srv, err := m.Telemetry().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"instameasure_packets_total",
		"instameasure_wsaf_probe_length_bucket",
		"instameasure_l1_recycles_total",
		"instameasure_goroutines", // runtime metrics registered by Serve
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestClusterTelemetryShared(t *testing.T) {
	tr := testTrace(t)
	c, err := NewCluster(ClusterConfig{
		Meter:   Config{SketchMemoryBytes: 16 << 10, WSAFEntries: 1 << 14, Seed: 5},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	tm := c.Telemetry()
	if got := tm.Value("instameasure_packets_total"); got != float64(rep.Packets) {
		t.Errorf("cluster packets_total = %g, want %d", got, rep.Packets)
	}
	out := new(strings.Builder)
	if err := tm.WritePrometheus(out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `instameasure_worker_packets_total{worker="1"}`) {
		t.Error("per-worker series missing from cluster registry")
	}
}

func TestStatsSplitsEvictionsAndExpirations(t *testing.T) {
	// A small TTL'd table under a large workload exercises both
	// second-chance evictions and inline expirations.
	tr := testTrace(t)
	m, err := New(Config{
		SketchMemoryBytes: 8 << 10, WSAFEntries: 1 << 8,
		WSAFTTLNanos: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.WSAFEvictions == 0 && st.WSAFExpirations == 0 {
		t.Error("tiny TTL'd table produced neither evictions nor expirations")
	}
}

func TestSnapshotDetailRoundTrip(t *testing.T) {
	tr := testTrace(t)
	m := testMeter(t)
	if _, err := m.ProcessSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.ExportSnapshot(&buf, 9); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSnapshotDetail(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasStats {
		t.Fatal("ExportSnapshot wrote no stats trailer")
	}
	if info.Epoch != 9 {
		t.Errorf("epoch = %d, want 9", info.Epoch)
	}
	st := m.Stats()
	if info.Stats.Evictions != st.WSAFEvictions || info.Stats.Expirations != st.WSAFExpirations {
		t.Errorf("trailer churn %+v disagrees with Stats (%d evictions / %d expirations)",
			info.Stats, st.WSAFEvictions, st.WSAFExpirations)
	}
	// The legacy reader still works on the same bytes.
	records, epoch, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 9 || len(records) != len(info.Records) {
		t.Errorf("legacy reader: epoch %d, %d records; want 9, %d", epoch, len(records), len(info.Records))
	}
}
